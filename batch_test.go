package shmrename

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
)

// arenaCases enumerates every public backend, used by the cross-backend
// contract tests below.
func arenaCases(t *testing.T, capacity int, probe ProbeMode) map[string]*Arena {
	t.Helper()
	out := make(map[string]*Arena)
	for _, backend := range stormBackends() {
		cfg := ArenaConfig{Capacity: capacity, Backend: backend, Probe: probe, Seed: 3}
		if backend == ArenaBackendSharded {
			cfg.Shards = 4
		}
		a, err := NewArena(cfg)
		if err != nil {
			t.Fatalf("%s: %v", backend, err)
		}
		out[string(backend)] = a
	}
	return out
}

// TestErrorSemanticsAcrossBackends is the cross-backend error table: the
// level, τ, and sharded backends must report identical error semantics —
// a double Release wraps ErrNotHeld with the offending name, and a full
// arena wraps ErrArenaFull with its capacity — under both probe modes.
func TestErrorSemanticsAcrossBackends(t *testing.T) {
	const capacity = 16
	for _, probe := range []ProbeMode{ProbeBit, ProbeWord} {
		for backend, a := range arenaCases(t, capacity, probe) {
			t.Run(fmt.Sprintf("%s/%s", backend, probe), func(t *testing.T) {
				// Double release: ErrNotHeld, wrapped with the name.
				n, err := a.Acquire()
				if err != nil {
					t.Fatal(err)
				}
				if err := a.Release(n); err != nil {
					t.Fatal(err)
				}
				err = a.Release(n)
				if !errors.Is(err, ErrNotHeld) {
					t.Fatalf("double Release = %v, want ErrNotHeld", err)
				}
				if want := fmt.Sprintf("name %d", n); !strings.Contains(err.Error(), want) {
					t.Fatalf("double Release error %q missing %q", err, want)
				}
				// The batch path reports the same, name by name.
				err = a.ReleaseAll([]int{n})
				if !errors.Is(err, ErrNotHeld) || !strings.Contains(err.Error(), fmt.Sprintf("name %d", n)) {
					t.Fatalf("batch double release = %v, want wrapped ErrNotHeld with name", err)
				}
				// Full arena: ErrArenaFull, reporting the capacity.
				var held []int
				for {
					n, err := a.Acquire()
					if err != nil {
						if !errors.Is(err, ErrArenaFull) {
							t.Fatalf("acquire on filling arena: %v", err)
						}
						if want := fmt.Sprintf("capacity %d", capacity); !strings.Contains(err.Error(), want) {
							t.Fatalf("ErrArenaFull error %q missing %q", err, want)
						}
						break
					}
					held = append(held, n)
				}
				// A full-arena batch reports capacity and batch size.
				_, err = a.AcquireN(2)
				if !errors.Is(err, ErrArenaFull) {
					t.Fatalf("AcquireN on full arena = %v, want ErrArenaFull", err)
				}
				for _, frag := range []string{fmt.Sprintf("capacity %d", capacity), "batch of 2"} {
					if !strings.Contains(err.Error(), frag) {
						t.Fatalf("batch full error %q missing %q", err, frag)
					}
				}
				if err := a.ReleaseAll(held); err != nil {
					t.Fatal(err)
				}
				if a.Held() != 0 {
					t.Fatalf("held %d after drain", a.Held())
				}
			})
		}
	}
}

// TestAcquireNReleaseAll checks the public batch contract end to end on
// every backend: all-or-nothing batches of distinct in-bound names, a
// validated size range, rollback on an unservable batch, and statistics
// that account every name of a batch.
func TestAcquireNReleaseAll(t *testing.T) {
	const capacity = 64
	for backend, a := range arenaCases(t, capacity, ProbeAuto) {
		t.Run(backend, func(t *testing.T) {
			for _, bad := range []int{0, -1, capacity + 1} {
				if _, err := a.AcquireN(bad); err == nil {
					t.Fatalf("AcquireN(%d) accepted", bad)
				}
			}
			seen := make(map[int]bool)
			var all []int
			for i := 0; i < capacity/8; i++ {
				names, err := a.AcquireN(8)
				if err != nil {
					t.Fatalf("batch %d: %v", i, err)
				}
				if len(names) != 8 {
					t.Fatalf("batch %d: got %d names", i, len(names))
				}
				for _, n := range names {
					if n < 0 || n >= a.NameBound() {
						t.Fatalf("name %d outside [0,%d)", n, a.NameBound())
					}
					if seen[n] {
						t.Fatalf("name %d issued twice", n)
					}
					seen[n] = true
				}
				all = append(all, names...)
			}
			if a.Held() != capacity {
				t.Fatalf("held %d, want %d", a.Held(), capacity)
			}
			st := a.Stats()
			if st.Acquires != capacity {
				t.Fatalf("stats acquires %d, want %d", st.Acquires, capacity)
			}
			// Word-granular batches serve up to 64 names per step, so the
			// floor is one step per batch call, not one per name.
			if st.AcquireSteps < capacity/8 {
				t.Fatalf("stats steps %d below one per batch", st.AcquireSteps)
			}
			// The arena is exactly full: a capacity-sized batch cannot be
			// served, and the rollback must leave occupancy untouched.
			if _, err := a.AcquireN(capacity); !errors.Is(err, ErrArenaFull) {
				t.Fatalf("over-batch = %v, want ErrArenaFull", err)
			}
			if a.Held() != capacity {
				t.Fatalf("held %d after rolled-back batch, want %d", a.Held(), capacity)
			}
			// Drain with an oversized batch (>64 entries exercises the
			// map-based duplicate detection) carrying one repeat: every
			// held name is released, the repeat reports ErrNotHeld.
			err := a.ReleaseAll(append(append([]int{}, all...), all[0]))
			if !errors.Is(err, ErrNotHeld) || !strings.Contains(err.Error(), fmt.Sprintf("name %d", all[0])) {
				t.Fatalf("oversized duplicate batch = %v, want wrapped ErrNotHeld with name", err)
			}
			if a.Held() != 0 {
				t.Fatalf("held %d after ReleaseAll", a.Held())
			}
			if st := a.Stats(); st.Releases != capacity {
				t.Fatalf("stats releases %d, want %d", st.Releases, capacity)
			}
			// A name repeated within one batch is released once and the
			// repeat reports ErrNotHeld, matching sequential Releases.
			dup, err := a.AcquireN(2)
			if err != nil {
				t.Fatal(err)
			}
			err = a.ReleaseAll([]int{dup[0], dup[1], dup[0]})
			if !errors.Is(err, ErrNotHeld) || !strings.Contains(err.Error(), fmt.Sprintf("name %d", dup[0])) {
				t.Fatalf("duplicate batch release = %v, want wrapped ErrNotHeld with name", err)
			}
			if a.Held() != 0 {
				t.Fatalf("held %d after duplicate batch release", a.Held())
			}
			if st := a.Stats(); st.Releases != st.Acquires {
				t.Fatalf("stats releases %d diverged from acquires %d", st.Releases, st.Acquires)
			}
			// Mixed batch: invalid entries error without blocking the rest.
			names, err := a.AcquireN(4)
			if err != nil {
				t.Fatal(err)
			}
			mixed := append([]int{-1, a.NameBound()}, names...)
			err = a.ReleaseAll(mixed)
			if !errors.Is(err, ErrNotHeld) {
				t.Fatalf("mixed ReleaseAll = %v, want wrapped ErrNotHeld", err)
			}
			if a.Held() != 0 {
				t.Fatalf("held %d: valid names of a mixed batch not released", a.Held())
			}
		})
	}
}

// TestAcquireNConcurrent churns whole batches from many goroutines on the
// word path: batches never overlap between live holders and the arena
// drains to zero.
func TestAcquireNConcurrent(t *testing.T) {
	const workers, batch, cycles = 16, 4, 50
	for backend, a := range arenaCases(t, workers*batch, ProbeWord) {
		t.Run(backend, func(t *testing.T) {
			var wg sync.WaitGroup
			errs := make(chan error, workers)
			for g := 0; g < workers; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for c := 0; c < cycles; c++ {
						names, err := a.AcquireN(batch)
						if err != nil {
							errs <- err
							return
						}
						if err := a.ReleaseAll(names); err != nil {
							errs <- err
							return
						}
					}
				}()
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Fatal(err)
			}
			if a.Held() != 0 {
				t.Fatalf("held %d after concurrent batch churn", a.Held())
			}
			st := a.Stats()
			if want := int64(workers * batch * cycles); st.Acquires != want || st.Releases != want {
				t.Fatalf("stats %d/%d, want %d acquires and releases", st.Acquires, st.Releases, want)
			}
		})
	}
}
