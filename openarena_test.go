//go:build unix

package shmrename

import (
	"errors"
	"path/filepath"
	"testing"
	"time"
)

// TestOpenArenaLifecycle: create, churn, detach, reattach. Names held at
// Close stay claimed in the file and are visible to the next handle.
func TestOpenArenaLifecycle(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ns")
	a, err := OpenArena(path, ArenaConfig{Capacity: 64})
	if err != nil {
		t.Fatal(err)
	}
	if !a.Leased() {
		t.Fatal("mmap-backed arena must always be leased")
	}
	if a.Capacity() != 64 || a.NameBound() != 64 {
		t.Fatalf("geometry %d/%d, want 64/64", a.Capacity(), a.NameBound())
	}
	names, err := a.AcquireN(8)
	if err != nil {
		t.Fatal(err)
	}
	if got := a.Heartbeat(); got != len(names) {
		t.Fatalf("heartbeat renewed %d of %d", got, len(names))
	}
	// Default TTL is 1s: nothing is stale, and the pid oracle vouches for
	// this very process anyway.
	if got := a.SweepStale(); got != 0 {
		t.Fatalf("sweep reclaimed %d fresh leases", got)
	}
	if err := a.Release(names[0]); err != nil {
		t.Fatal(err)
	}
	if st := a.Stats(); st.Sweeps < 2 { // the on-open sweep plus SweepStale
		t.Fatalf("stats %+v, want the open-time sweep counted", st)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}

	// Reattach: the remaining claims persisted across the detach.
	b, err := OpenArena(path, ArenaConfig{Capacity: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if held := b.Held(); held != len(names)-1 {
		t.Fatalf("reattach sees %d held, want %d", held, len(names)-1)
	}
	for _, n := range names[1:] {
		if !b.impl.IsHeld(n) {
			t.Fatalf("name %d lost across detach", n)
		}
	}

	// A mismatched geometry must be refused, not reinterpreted.
	if _, err := OpenArena(path, ArenaConfig{Capacity: 128}); err == nil {
		t.Fatal("attach with mismatched capacity succeeded")
	}
}

// TestOpenArenaValidation: the persisted namespace is flat and always
// leased, so backend/probe knobs and malformed lease configs are rejected
// before the file is touched.
func TestOpenArenaValidation(t *testing.T) {
	dir := t.TempDir()
	cases := []ArenaConfig{
		{Capacity: 0},
		{Capacity: 64, Backend: ArenaLevel},
		{Capacity: 64, Backend: ArenaBackendSharded},
		{Capacity: 64, Shards: 2},
		{Capacity: 64, StealProbes: 1},
		{Capacity: 64, Probes: 3},
		{Capacity: 64, Probe: ProbeBit},
		{Capacity: 64, Lease: &LeaseConfig{}},                  // TTL unset
		{Capacity: 64, Lease: &LeaseConfig{TTL: -time.Second}}, // negative
	}
	for i, cfg := range cases {
		if _, err := OpenArena(filepath.Join(dir, "ns"), cfg); err == nil {
			t.Fatalf("case %d accepted: %+v", i, cfg)
		}
	}
	// The rejected opens must not have created a half-written file that
	// poisons a subsequent valid open.
	a, err := OpenArena(filepath.Join(dir, "ns"), ArenaConfig{Capacity: 64})
	if err != nil {
		t.Fatalf("valid open after rejected configs: %v", err)
	}
	a.Close()
}

// TestOpenArenaRecovery drives crash recovery through the public wrapper:
// handle A's names outlive its Close, go stale, and handle B — sweeping
// with an always-dead oracle, since both handles share this process's pid
// — reclaims them and reuses the pool. (Real cross-process recovery, with
// SIGKILLed children and the kill(pid, 0) oracle, is covered by
// internal/persist's TestPersistCrossProcessKill.)
func TestOpenArenaRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ns")
	dead := func(uint64) bool { return false }
	a, err := OpenArena(path, ArenaConfig{Capacity: 64, Lease: &LeaseConfig{TTL: time.Millisecond, Alive: dead}})
	if err != nil {
		t.Fatal(err)
	}
	names, err := a.AcquireN(16)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}

	time.Sleep(10 * time.Millisecond) // the 1ms leases lapse
	b, err := OpenArena(path, ArenaConfig{Capacity: 64, Lease: &LeaseConfig{TTL: time.Millisecond, Alive: dead}})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	// The open-time sweep already ran with everything stale; between it and
	// an explicit SweepStale, every abandoned lease must be back in the pool.
	b.SweepStale()
	if held := b.Held(); held != 0 {
		t.Fatalf("%d abandoned names still held after recovery", held)
	}
	if st := b.Stats(); st.Reclaimed != int64(len(names)) {
		t.Fatalf("stats %+v, want Reclaimed=%d", st, len(names))
	}
	got, err := b.AcquireN(64)
	if err != nil {
		t.Fatalf("pool not whole after recovery: %v", err)
	}
	if len(got) != 64 {
		t.Fatalf("re-granted %d of 64", len(got))
	}
}

// TestOpenArenaFullSentinel: the -1 error-path contract holds for the
// mmap-backed backend too.
func TestOpenArenaFullSentinel(t *testing.T) {
	a, err := OpenArena(filepath.Join(t.TempDir(), "ns"), ArenaConfig{Capacity: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	for i := 0; i < a.NameBound(); i++ {
		if _, err := a.Acquire(); err != nil {
			break
		}
	}
	n, err := a.Acquire()
	if !errors.Is(err, ErrArenaFull) || n != -1 {
		t.Fatalf("acquire on full arena = (%d, %v), want (-1, ErrArenaFull)", n, err)
	}
}
