package shmrename

import (
	"sync"
	"testing"
)

func TestCountingDeviceBasic(t *testing.T) {
	dev, err := NewCountingDevice(16, 3)
	if err != nil {
		t.Fatal(err)
	}
	if dev.Width() != 16 || dev.Tau() != 3 {
		t.Fatalf("accessors: width=%d tau=%d", dev.Width(), dev.Tau())
	}
	winners := 0
	for i := 0; i < 50; i++ {
		if dev.Acquire(7, 16) >= 0 {
			winners++
		}
	}
	if winners != 3 || dev.Confirmed() != 3 {
		t.Fatalf("winners=%d confirmed=%d, want 3/3", winners, dev.Confirmed())
	}
}

func TestCountingDeviceConcurrent(t *testing.T) {
	dev, err := NewCountingDevice(64, 10)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	bits := map[int]bool{}
	var wg sync.WaitGroup
	for g := 0; g < 200; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if b := dev.Acquire(3, 64); b >= 0 {
				mu.Lock()
				if bits[b] {
					t.Errorf("bit %d won twice", b)
				}
				bits[b] = true
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if len(bits) != 10 || dev.Confirmed() != 10 {
		t.Fatalf("winners=%d confirmed=%d, want 10/10", len(bits), dev.Confirmed())
	}
}

func TestCountingDeviceErrors(t *testing.T) {
	for _, c := range []struct{ w, tau int }{{0, 0}, {65, 1}, {8, 9}, {8, -1}} {
		if _, err := NewCountingDevice(c.w, c.tau); err == nil {
			t.Fatalf("width=%d tau=%d accepted", c.w, c.tau)
		}
	}
}

func TestCountingDeviceZeroAttempts(t *testing.T) {
	dev, err := NewCountingDevice(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	if got := dev.Acquire(1, 0); got != -1 {
		t.Fatalf("zero attempts returned %d", got)
	}
}

func TestRenameAdaptiveViaFacade(t *testing.T) {
	res, err := Rename(Config{N: 200, Algorithm: Adaptive, Seed: 5, Simulate: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Verify(); err != nil {
		t.Fatal(err)
	}
	named := 0
	for _, n := range res.Names {
		if n >= 0 {
			named++
		}
	}
	if named != 200 {
		t.Fatalf("%d named", named)
	}
	if res.M <= 200 {
		t.Fatalf("adaptive arena m=%d", res.M)
	}
}

func TestRenameTightTauTooLarge(t *testing.T) {
	if _, err := Rename(Config{N: 1 << 32, Algorithm: TightTau}); err == nil {
		t.Fatal("n = 2^32 accepted for TightTau")
	}
}
