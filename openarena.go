//go:build unix

package shmrename

import (
	"errors"
	"fmt"
	"time"

	"shmrename/internal/persist"
	"shmrename/internal/shm"
)

// OpenArena creates or attaches to a cross-process renaming arena backed
// by the mmap'd file at path: the claim bitmap and lease-stamp array live
// in shared pages, so unrelated OS processes coordinate through the same
// word-granular TAS/CAS protocol the in-process arena uses, and a process
// that dies holding names loses them back to the pool.
//
// The file is created (with cfg.Capacity names) on first open and
// validated — magic, layout version, geometry — on every subsequent one;
// attaching with a different Capacity is an error. Leases are always on:
// each handle claims under its process ID, cfg.Lease tunes the TTL,
// background reaper, and liveness oracle (defaulting to 1s, no reaper,
// and kill(pid, 0) respectively), and every OpenArena runs one recovery
// sweep before returning, so names orphaned by crashed holders are
// re-grantable immediately. Call Heartbeat more often than once per TTL
// while holding names, and Close to detach.
//
// The persisted namespace is a flat bitmap: cfg.Backend, Shards,
// StealProbes, Probes, and Elastic must be zero — cross-process churn is
// dominated by page coherence, not probe schedules, and a flat map with a
// fixed on-disk geometry keeps every attach trivially checkable.
func OpenArena(path string, cfg ArenaConfig) (*Arena, error) {
	if cfg.Capacity < 1 {
		return nil, errors.New("shmrename: ArenaConfig.Capacity must be >= 1")
	}
	if cfg.Backend != "" {
		return nil, fmt.Errorf("shmrename: OpenArena namespaces are flat; Backend %q is not configurable", cfg.Backend)
	}
	if cfg.Shards != 0 || cfg.StealProbes != 0 || cfg.Probes != 0 {
		return nil, fmt.Errorf("shmrename: OpenArena namespaces are flat; Shards/StealProbes/Probes are not configurable")
	}
	if cfg.Elastic != nil {
		// The mmap'd file's geometry (header-checked on every attach) is
		// the cross-process contract; levels appearing and vanishing would
		// need every attached process to agree on remap points. Elasticity
		// stays an in-process feature.
		return nil, fmt.Errorf("shmrename: OpenArena namespaces have a fixed on-disk geometry; Elastic is not configurable")
	}
	if cfg.LeaseBlocks != 0 {
		// Parked names in a per-process cache would look identical to held
		// names from every other process of the namespace, defeating the
		// cross-process occupancy story; the in-process arena is the
		// lease-cache surface.
		return nil, fmt.Errorf("shmrename: OpenArena namespaces are flat; LeaseBlocks is not configurable")
	}
	if cfg.Probe != ProbeAuto && cfg.Probe != ProbeWord {
		return nil, fmt.Errorf("shmrename: OpenArena namespaces always scan word-granular; Probe %q is not configurable", cfg.Probe)
	}
	lease := cfg.Lease
	if lease == nil {
		lease = &LeaseConfig{TTL: time.Second}
	}
	if err := lease.validate(); err != nil {
		return nil, err
	}
	if cfg.Integrity != nil {
		if err := cfg.Integrity.validate(); err != nil {
			return nil, err
		}
	}
	pa, err := persist.Open(path, persist.Options{
		Names:     cfg.Capacity,
		TTL:       lease.ttlEpochs(),
		Alive:     lease.Alive,
		MaxPasses: acquirePasses,
	})
	if err != nil {
		return nil, err
	}
	a := &Arena{impl: pa, seed: cfg.Seed}
	a.closer = pa.Close
	a.initLease(pa, pa.Holder(), shm.WallEpochs{}, pa.Sweeper(), lease.Reaper)
	if cfg.Integrity != nil {
		// Quarantine marks live in the file's stamp page, so a quarantine
		// survives process generations: any later handle's scrubber
		// recognizes the damaged words and keeps them out of circulation.
		a.initIntegrity(cfg.Integrity, lease.ttlEpochs(), shm.WallEpochs{})
	}
	return a, nil
}
