package shmrename

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestLeaseBlocksValidation pins the config surface: the block size is
// bounded by one bitmap word and requires the word-granular claim engine.
func TestLeaseBlocksValidation(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  ArenaConfig
	}{
		{"negative", ArenaConfig{Capacity: 64, LeaseBlocks: -1}},
		{"over-word", ArenaConfig{Capacity: 64, LeaseBlocks: 65}},
		{"bit-probe", ArenaConfig{Capacity: 64, LeaseBlocks: 64, Probe: ProbeBit}},
	} {
		if _, err := NewArena(tc.cfg); err == nil {
			t.Errorf("%s: config accepted", tc.name)
		}
	}
	for _, blocks := range []int{0, 1, 64} {
		a, err := NewArena(ArenaConfig{Capacity: 256, LeaseBlocks: blocks})
		if err != nil {
			t.Fatalf("LeaseBlocks=%d rejected: %v", blocks, err)
		}
		a.Close()
	}
}

// TestLeaseBlocksOpenArenaRejected: the mmap-backed namespace is flat and
// shared across processes; a per-process cache is not configurable there.
func TestLeaseBlocksOpenArenaRejected(t *testing.T) {
	_, err := OpenArena(t.TempDir()+"/arena", ArenaConfig{Capacity: 64, LeaseBlocks: 64})
	if err == nil {
		t.Fatal("OpenArena accepted LeaseBlocks")
	}
}

// TestLeaseBlocksChurn drives the cached arena through the public API:
// distinct names while held, released names recycled, stats counters
// moving, and the backend untouched in steady state.
func TestLeaseBlocksChurn(t *testing.T) {
	a, err := NewArena(ArenaConfig{
		Capacity:    1024,
		Backend:     ArenaBackendSharded,
		Shards:      2,
		LeaseBlocks: 64,
		Seed:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	held := map[int]bool{}
	for i := 0; i < 200; i++ {
		n, err := a.Acquire()
		if err != nil {
			t.Fatalf("acquire %d: %v", i, err)
		}
		if held[n] {
			t.Fatalf("name %d granted while held", n)
		}
		held[n] = true
		if i%3 == 0 {
			if err := a.Release(n); err != nil {
				t.Fatalf("release %d: %v", n, err)
			}
			delete(held, n)
		}
	}
	st := a.Stats()
	if st.CacheRefills == 0 {
		t.Fatal("no block leases recorded — cache inactive")
	}
	if st.Acquires != 200 || int(st.Releases) != 200/3+1 {
		t.Fatalf("stats acquires/releases = %d/%d", st.Acquires, st.Releases)
	}
	// Steady-state churn serves from the cache: steps/acquire must sit
	// far below the uncached word path (which pays at least one step per
	// block of probes).
	if perAcq := float64(st.AcquireSteps) / float64(st.Acquires); perAcq > 1 {
		t.Fatalf("steps/acquire %.2f — fast path not engaged", perAcq)
	}
}

// TestLeaseBlocksReleaseGuards pins the not-held guard through the cache:
// a released (parked) name cannot be released again, and parked names are
// not "held".
func TestLeaseBlocksReleaseGuards(t *testing.T) {
	a, err := NewArena(ArenaConfig{Capacity: 256, LeaseBlocks: 16, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	n, err := a.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Release(n); err != nil {
		t.Fatal(err)
	}
	if err := a.Release(n); !errors.Is(err, ErrNotHeld) {
		t.Fatalf("double release of parked name: %v", err)
	}
	if got := a.Held(); got != 0 {
		t.Fatalf("Held() = %d with every name released", got)
	}
}

// TestLeaseBlocksBatch exercises AcquireN/ReleaseAll through the cache:
// the all-or-nothing batch contract must hold unchanged.
func TestLeaseBlocksBatch(t *testing.T) {
	a, err := NewArena(ArenaConfig{Capacity: 512, LeaseBlocks: 64, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	names, err := a.AcquireN(100)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, n := range names {
		if seen[n] {
			t.Fatalf("name %d twice in batch", n)
		}
		seen[n] = true
	}
	if err := a.ReleaseAll(names); err != nil {
		t.Fatal(err)
	}
	if err := a.ReleaseAll(names[:2]); err == nil {
		t.Fatal("re-release of parked batch accepted")
	}
}

// TestLeaseBlocksCrashRecovery composes caching with leases end to end on
// the public surface: a handle that goes silent loses parked and granted
// names alike to the sweep, and the pool is whole afterwards.
func TestLeaseBlocksCrashRecovery(t *testing.T) {
	a, err := NewArena(ArenaConfig{
		Capacity:    64,
		LeaseBlocks: 16,
		Seed:        1,
		Lease:       &LeaseConfig{TTL: time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	n, err := a.Acquire() // leases a block: 1 granted + 15 parked
	if err != nil {
		t.Fatal(err)
	}
	_ = n // the holder "crashes": no release, no heartbeat
	time.Sleep(5 * time.Millisecond)
	swept := a.SweepStale()
	if swept != 16 {
		t.Fatalf("sweep reclaimed %d names, want the whole 16-name block", swept)
	}
	// The pool must be whole: full capacity acquirable, pairwise distinct.
	names, err := a.AcquireN(a.Capacity() - 16) // 16 re-parked by the new lease blocks
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, m := range names {
		if seen[m] {
			t.Fatalf("name %d granted twice after sweep", m)
		}
		seen[m] = true
	}
}

// TestLeaseBlocksConcurrentStorm hammers the cached arena from many
// goroutines (the race job runs this under -race): held names stay
// pairwise distinct and nothing leaks.
func TestLeaseBlocksConcurrentStorm(t *testing.T) {
	a, err := NewArena(ArenaConfig{
		Capacity:    2048,
		Backend:     ArenaBackendSharded,
		Shards:      4,
		LeaseBlocks: 32,
		Seed:        7,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	var owner sync.Map
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var held []int
			for i := 0; i < 300; i++ {
				n, err := a.Acquire()
				if err != nil {
					errs <- err
					return
				}
				if prev, loaded := owner.LoadOrStore(n, g); loaded {
					errs <- fmt.Errorf("name %d granted to %d while held by %d", n, g, prev.(int))
					return
				}
				held = append(held, n)
				if len(held) > 4 {
					m := held[0]
					held = held[1:]
					owner.Delete(m)
					if err := a.Release(m); err != nil {
						errs <- err
						return
					}
				}
			}
			for _, m := range held {
				owner.Delete(m)
				if err := a.Release(m); err != nil {
					errs <- err
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := a.Held(); got != 0 {
		t.Fatalf("%d names leaked", got)
	}
}
