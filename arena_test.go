package shmrename

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestArenaBackends(t *testing.T) {
	for _, backend := range defaultAndStormBackends() {
		a, err := NewArena(ArenaConfig{Capacity: 64, Backend: backend, Seed: 1})
		if err != nil {
			t.Fatalf("%q: %v", backend, err)
		}
		seen := make(map[int]bool)
		var names []int
		for i := 0; i < 64; i++ {
			n, err := a.Acquire()
			if err != nil {
				t.Fatalf("%q acquire %d: %v", backend, i, err)
			}
			if n < 0 || n >= a.NameBound() {
				t.Fatalf("%q: name %d outside [0,%d)", backend, n, a.NameBound())
			}
			if seen[n] {
				t.Fatalf("%q: name %d issued twice", backend, n)
			}
			seen[n] = true
			names = append(names, n)
		}
		if a.Held() != 64 {
			t.Fatalf("%q: held %d, want 64", backend, a.Held())
		}
		for _, n := range names {
			if err := a.Release(n); err != nil {
				t.Fatalf("%q release %d: %v", backend, n, err)
			}
		}
		if a.Held() != 0 {
			t.Fatalf("%q: held %d after drain", backend, a.Held())
		}
		// Long-lived: a fresh generation succeeds on the drained arena.
		if _, err := a.Acquire(); err != nil {
			t.Fatalf("%q reacquire: %v", backend, err)
		}
	}
}

func TestArenaConcurrentChurn(t *testing.T) {
	for _, cfg := range []ArenaConfig{
		{Capacity: 32, Seed: 7},
		{Capacity: 32, Seed: 7, Backend: ArenaBackendSharded, Shards: 4},
	} {
		a, err := NewArena(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		errs := make(chan error, 32)
		for g := 0; g < 32; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for c := 0; c < 50; c++ {
					n, err := a.Acquire()
					if err != nil {
						errs <- err
						return
					}
					if err := a.Release(n); err != nil {
						errs <- err
						return
					}
				}
			}()
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatalf("%s: %v", a.Backend(), err)
		}
		if a.Held() != 0 {
			t.Fatalf("%s: held %d after churn", a.Backend(), a.Held())
		}
	}
}

func TestArenaFullAndReleaseErrors(t *testing.T) {
	a, err := NewArena(ArenaConfig{Capacity: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Drain the arena structurally; Acquire must eventually report full
	// instead of spinning forever.
	for i := 0; i < a.NameBound(); i++ {
		if _, err := a.Acquire(); err != nil {
			if !errors.Is(err, ErrArenaFull) {
				t.Fatalf("unexpected acquire error: %v", err)
			}
			break
		}
	}
	if _, err := a.Acquire(); !errors.Is(err, ErrArenaFull) {
		t.Fatalf("acquire on full arena: %v, want ErrArenaFull", err)
	}
}

// TestArenaReleaseOutOfRange pins the descriptive-error convention for
// Release: an out-of-range name is not held, so the error wraps ErrNotHeld
// and names the offending value and the valid range.
func TestArenaReleaseOutOfRange(t *testing.T) {
	a, err := NewArena(ArenaConfig{Capacity: 8})
	if err != nil {
		t.Fatal(err)
	}
	bound := a.NameBound()
	cases := []struct {
		name int
		want []string
	}{
		{-1, []string{"-1", fmt.Sprintf("[0, %d)", bound)}},
		{-1 << 20, []string{fmt.Sprintf("%d", -1<<20)}},
		{bound, []string{fmt.Sprintf("%d", bound), fmt.Sprintf("[0, %d)", bound)}},
		{bound + 41, []string{fmt.Sprintf("%d", bound+41)}},
	}
	for _, tc := range cases {
		err := a.Release(tc.name)
		if !errors.Is(err, ErrNotHeld) {
			t.Fatalf("Release(%d) = %v, want ErrNotHeld", tc.name, err)
		}
		for _, frag := range tc.want {
			if !strings.Contains(err.Error(), frag) {
				t.Fatalf("Release(%d) error %q missing %q", tc.name, err, frag)
			}
		}
	}
}

func TestArenaReleaseNotHeld(t *testing.T) {
	a, err := NewArena(ArenaConfig{Capacity: 8})
	if err != nil {
		t.Fatal(err)
	}
	n, err := a.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Release(n); err != nil {
		t.Fatal(err)
	}
	if err := a.Release(n); !errors.Is(err, ErrNotHeld) {
		t.Fatalf("double release: %v, want ErrNotHeld", err)
	}
}

func TestNewArenaConfigErrors(t *testing.T) {
	cases := []ArenaConfig{
		{Capacity: 0},
		{Capacity: -3},
		{Capacity: 1 << 29},
		{Capacity: 8, Backend: "warp-array"},
		{Capacity: 8, Probes: -1},
		{Capacity: 8, Probe: "nibble"},
		// Sharded-backend knob validation.
		{Capacity: 8, Backend: ArenaBackendSharded, Shards: -1},
		{Capacity: 8, Backend: ArenaBackendSharded, Shards: 9},
		{Capacity: 8, Backend: ArenaBackendSharded, StealProbes: -1},
		// Sharded knobs rejected on non-sharded backends.
		{Capacity: 8, Shards: 2},
		{Capacity: 8, Backend: ArenaTau, Shards: 2},
		{Capacity: 8, Backend: ArenaLevel, StealProbes: 1},
	}
	for i, cfg := range cases {
		if _, err := NewArena(cfg); err == nil {
			t.Fatalf("case %d accepted: %+v", i, cfg)
		}
	}
}
