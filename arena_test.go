package shmrename

import (
	"errors"
	"sync"
	"testing"
)

func TestArenaBackends(t *testing.T) {
	for _, backend := range []ArenaBackend{"", ArenaLevel, ArenaTau} {
		a, err := NewArena(ArenaConfig{Capacity: 64, Backend: backend, Seed: 1})
		if err != nil {
			t.Fatalf("%q: %v", backend, err)
		}
		seen := make(map[int]bool)
		var names []int
		for i := 0; i < 64; i++ {
			n, err := a.Acquire()
			if err != nil {
				t.Fatalf("%q acquire %d: %v", backend, i, err)
			}
			if n < 0 || n >= a.NameBound() {
				t.Fatalf("%q: name %d outside [0,%d)", backend, n, a.NameBound())
			}
			if seen[n] {
				t.Fatalf("%q: name %d issued twice", backend, n)
			}
			seen[n] = true
			names = append(names, n)
		}
		if a.Held() != 64 {
			t.Fatalf("%q: held %d, want 64", backend, a.Held())
		}
		for _, n := range names {
			if err := a.Release(n); err != nil {
				t.Fatalf("%q release %d: %v", backend, n, err)
			}
		}
		if a.Held() != 0 {
			t.Fatalf("%q: held %d after drain", backend, a.Held())
		}
		// Long-lived: a fresh generation succeeds on the drained arena.
		if _, err := a.Acquire(); err != nil {
			t.Fatalf("%q reacquire: %v", backend, err)
		}
	}
}

func TestArenaConcurrentChurn(t *testing.T) {
	a, err := NewArena(ArenaConfig{Capacity: 32, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for g := 0; g < 32; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for c := 0; c < 50; c++ {
				n, err := a.Acquire()
				if err != nil {
					errs <- err
					return
				}
				if err := a.Release(n); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if a.Held() != 0 {
		t.Fatalf("held %d after churn", a.Held())
	}
}

func TestArenaFullAndReleaseErrors(t *testing.T) {
	a, err := NewArena(ArenaConfig{Capacity: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Drain the arena structurally; Acquire must eventually report full
	// instead of spinning forever.
	for i := 0; i < a.NameBound(); i++ {
		if _, err := a.Acquire(); err != nil {
			if !errors.Is(err, ErrArenaFull) {
				t.Fatalf("unexpected acquire error: %v", err)
			}
			break
		}
	}
	if _, err := a.Acquire(); !errors.Is(err, ErrArenaFull) {
		t.Fatalf("acquire on full arena: %v, want ErrArenaFull", err)
	}
	// Release validation.
	if err := a.Release(-1); err == nil {
		t.Fatal("negative name accepted")
	}
	if err := a.Release(a.NameBound()); err == nil {
		t.Fatal("out-of-range name accepted")
	}
}

func TestArenaReleaseNotHeld(t *testing.T) {
	a, err := NewArena(ArenaConfig{Capacity: 8})
	if err != nil {
		t.Fatal(err)
	}
	n, err := a.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Release(n); err != nil {
		t.Fatal(err)
	}
	if err := a.Release(n); !errors.Is(err, ErrNotHeld) {
		t.Fatalf("double release: %v, want ErrNotHeld", err)
	}
}

func TestNewArenaConfigErrors(t *testing.T) {
	cases := []ArenaConfig{
		{Capacity: 0},
		{Capacity: -3},
		{Capacity: 1 << 29},
		{Capacity: 8, Backend: "warp-array"},
		{Capacity: 8, Probes: -1},
	}
	for i, cfg := range cases {
		if _, err := NewArena(cfg); err == nil {
			t.Fatalf("case %d accepted: %+v", i, cfg)
		}
	}
}
