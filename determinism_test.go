package shmrename

// Golden determinism test: the scheduler refactor (interned SpaceIDs,
// packed bitmaps, coroutine runner) must not change which names any process
// acquires for a fixed (seed, schedule). The arrays below were recorded
// from the pre-refactor channel-based simulator at the seed commit; the
// current simulator must reproduce them bit for bit.

import (
	"testing"
	"time"

	"shmrename/internal/core"
	"shmrename/internal/sched"
)

var goldenNames = map[string][]int{
	"loose-fifo":   {28, 13, 45, 50, 51, 11, 10, 59, 40, 18, 49, 34, 2, 19, 8, 47, 43, 17, 36, 26, 61, 4, 46, 27, 58, 33, 5, 56, 24, 15, 55, 39, 23, 38, 63, -1, 3, 1, 9, 53, 42, 48, 62, 35, 21, 30, 37, 12, 20, 0, -1, 44, 57, 25, 29, 41, 22, 6, -1, 31, 7, 54, 14, 52},
	"loose-rr":     {28, 13, 45, 50, 51, 11, 10, 59, 40, 18, 49, 34, 2, 19, 8, 47, 43, 17, 36, 26, 61, 4, 46, 27, 58, 33, 5, 56, 24, 15, 55, 39, 23, 38, 63, -1, 3, 1, 9, 53, 42, 48, 62, 35, 21, 30, 37, 12, 20, 0, -1, 44, 57, 25, 29, 41, 22, 6, -1, 31, 7, 54, 14, 52},
	"loose-random": {28, 8, 38, 50, 51, 11, 10, 55, 40, 4, 49, 16, 2, 21, 34, 6, 58, 17, 36, 26, 61, 18, 46, 27, 13, 33, 5, 56, 24, 15, 59, 39, 23, 12, 63, -1, -1, 31, 9, 19, 32, 48, 62, 29, -1, 43, 37, 42, 35, 1, 7, 44, 57, 25, 45, 41, 22, 53, 47, 30, 3, 54, 14, 52},
	"tight-fifo":   {12, 13, 0, 55, 41, 6, 14, 45, 35, 1, 2, 57, 49, 24, 30, 7, 50, 15, 53, 62, 58, 59, 8, 9, 25, 10, 51, 26, 11, 27, 48, 52, 18, 36, 46, 19, 47, 20, 37, 31, 21, 16, 54, 61, 60, 38, 56, 32, 33, 42, 17, 39, 63, 3, 28, 43, 29, 4, 34, 22, 40, 44, 23, 5},
	"tight-rr":     {12, 13, 0, 24, 6, 7, 14, 25, 8, 1, 2, 15, 3, 26, 30, 9, 16, 17, 27, 18, 19, 50, 10, 11, 28, 44, 35, 29, 48, 38, 62, 51, 20, 36, 21, 22, 31, 45, 39, 32, 23, 58, 33, 52, 4, 40, 41, 53, 46, 47, 42, 37, 55, 5, 49, 43, 59, 60, 34, 56, 54, 61, 57, 63},
}

func namesOf(res []sched.Result) []int {
	out := make([]int, len(res))
	for i, r := range res {
		out[i] = r.Name
	}
	return out
}

func checkGolden(t *testing.T, key string, res []sched.Result) {
	t.Helper()
	got := namesOf(res)
	want := goldenNames[key]
	if len(got) != len(want) {
		t.Fatalf("%s: %d results, want %d", key, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: process %d got name %d, want golden %d", key, i, got[i], want[i])
		}
	}
}

func TestGoldenDeterminismLooseRounds(t *testing.T) {
	inst := core.NewLooseRounds(64, core.RoundsConfig{Ell: 2})
	res := sched.Run(sched.Config{N: 64, Seed: 42, Fast: sched.FastFIFO, Body: inst.Body})
	checkGolden(t, "loose-fifo", res)

	inst = core.NewLooseRounds(64, core.RoundsConfig{Ell: 2})
	res = sched.Run(sched.Config{N: 64, Seed: 42, Policy: sched.RoundRobin(),
		Body: inst.Body, Spaces: inst.Probeables()})
	checkGolden(t, "loose-rr", res)

	inst = core.NewLooseRounds(64, core.RoundsConfig{Ell: 2})
	res = sched.Run(sched.Config{N: 64, Seed: 42, Fast: sched.FastRandom, Body: inst.Body})
	checkGolden(t, "loose-random", res)
}

func TestGoldenDeterminismTight(t *testing.T) {
	inst := core.NewTight(64, core.TightConfig{SelfClocked: true})
	res := sched.Run(sched.Config{N: 64, Seed: 7, Fast: sched.FastFIFO, Body: inst.Body})
	checkGolden(t, "tight-fifo", res)

	// Externally clocked round-robin: exercises the AfterStep ordering of
	// the policy path against the same golden.
	inst = core.NewTight(64, core.TightConfig{})
	res = sched.Run(sched.Config{N: 64, Seed: 7, Policy: sched.RoundRobin(),
		Body: inst.Body, AfterStep: inst.Clock(), Spaces: inst.Probeables()})
	checkGolden(t, "tight-rr", res)
}

// TestPerfSmoke is the benchmark guard of tier-1: one simulated E2 instance
// at n = 2^14 must finish far inside a generous wall-clock ceiling. A gross
// simulator regression (e.g. an O(n) copy creeping back into the grant
// loop) blows the ceiling and fails tests instead of only showing up in
// benchmarks. The post-refactor run takes ~0.15s on a 2015-class core; the
// ceiling leaves 40x headroom for slow CI machines.
func TestPerfSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("perf smoke needs a full E2 run")
	}
	const n = 1 << 14
	// The ceiling gates the uninstrumented hot path; race instrumentation
	// slows the simulator several-fold without telling us anything about a
	// regression, so the race-job budget is proportionally wider.
	ceiling := 6 * time.Second
	if raceDetector {
		ceiling *= 4
	}
	start := time.Now()
	inst := core.NewTight(n, core.TightConfig{SelfClocked: true})
	res := sched.Run(sched.Config{N: n, Seed: 1, Fast: sched.FastFIFO, Body: inst.Body})
	elapsed := time.Since(start)
	if err := sched.VerifyUnique(res, n); err != nil {
		t.Fatal(err)
	}
	if got := sched.CountStatus(res, sched.Named); got != n {
		t.Fatalf("%d of %d processes named", got, n)
	}
	if elapsed > ceiling {
		t.Fatalf("E2 n=%d took %v, ceiling %v: simulator hot path regressed", n, elapsed, ceiling)
	}
	t.Logf("E2 n=%d in %v (ceiling %v)", n, elapsed, ceiling)
}
