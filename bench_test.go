package shmrename

// Benchmark harness: one benchmark per reproduction experiment E1-E12
// (ALGORITHMS.md §6) plus native multicore wall-clock benchmarks. Each
// iteration executes a complete renaming instance with a fresh seed and
// reports the step complexity of the execution alongside wall-clock time,
// so `go test -bench=. -benchmem` regenerates the measured columns of
// the experiment tables (ALGORITHMS.md §6) at benchmark scale.

import (
	"fmt"
	"sync/atomic"
	"testing"

	"shmrename/internal/backfill"
	"shmrename/internal/balls"
	"shmrename/internal/baseline"
	"shmrename/internal/core"
	"shmrename/internal/longlived"
	"shmrename/internal/prng"
	"shmrename/internal/sched"
	"shmrename/internal/sharded"
	"shmrename/internal/shm"
	"shmrename/internal/sortnet"
	"shmrename/internal/tas"
	"shmrename/internal/taureg"
)

// simBench runs factory-built instances on the deterministic simulator and
// reports the mean step complexity over the iterations.
func simBench(b *testing.B, factory func() core.Instance) {
	b.Helper()
	var totalMax int64
	for i := 0; i < b.N; i++ {
		inst := factory()
		res := sched.Run(sched.Config{
			N: inst.N(), Seed: uint64(i), Fast: sched.FastFIFO, Body: inst.Body,
		})
		if err := sched.VerifyUnique(res, inst.M()); err != nil {
			b.Fatal(err)
		}
		totalMax += sched.MaxSteps(res)
	}
	b.ReportMetric(float64(totalMax)/float64(b.N), "steps/proc-max")
}

// nativeBench runs factory-built instances on real goroutines.
func nativeBench(b *testing.B, factory func() core.Instance) {
	b.Helper()
	var totalMax int64
	for i := 0; i < b.N; i++ {
		inst := factory()
		res := sched.RunNative(inst.N(), uint64(i), inst.Body)
		if err := sched.VerifyUnique(res, inst.M()); err != nil {
			b.Fatal(err)
		}
		totalMax += sched.MaxSteps(res)
	}
	b.ReportMetric(float64(totalMax)/float64(b.N), "steps/proc-max")
}

// BenchmarkE1BallsIntoBins regenerates the Lemma 3 workload.
func BenchmarkE1BallsIntoBins(b *testing.B) {
	for _, n := range []int{1 << 12, 1 << 16, 1 << 20} {
		b.Run(fmt.Sprintf("n=%d,c=2", n), func(b *testing.B) {
			r := prng.New(1)
			empties := 0
			for i := 0; i < b.N; i++ {
				e, _ := balls.Lemma3Trial(n, 2, r)
				empties += e
			}
			b.ReportMetric(float64(empties)/float64(b.N), "empty-bins")
		})
	}
}

// BenchmarkE2TightSim measures Theorem 5 step complexity on the simulator.
func BenchmarkE2TightSim(b *testing.B) {
	for _, n := range []int{1 << 10, 1 << 12, 1 << 14} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			simBench(b, func() core.Instance {
				return core.NewTight(n, core.TightConfig{SelfClocked: true})
			})
		})
	}
}

// BenchmarkE3Geometry measures layout construction (the space side of
// Theorem 5 is asserted in the harness; here we time it).
func BenchmarkE3Geometry(b *testing.B) {
	for _, n := range []int{1 << 12, 1 << 16, 1 << 20} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			bits := 0
			for i := 0; i < b.N; i++ {
				g := core.NewGeometry(n, 2, core.Corrected)
				bits = g.TotalBits()
			}
			b.ReportMetric(float64(bits)/float64(n), "bits/name")
		})
	}
}

// BenchmarkE4LooseRounds measures the Lemma 6 algorithm.
func BenchmarkE4LooseRounds(b *testing.B) {
	for _, n := range []int{1 << 12, 1 << 14, 1 << 16} {
		b.Run(fmt.Sprintf("n=%d,l=2", n), func(b *testing.B) {
			var survivors int64
			for i := 0; i < b.N; i++ {
				inst := core.NewLooseRounds(n, core.RoundsConfig{Ell: 2})
				res := sched.Run(sched.Config{
					N: n, Seed: uint64(i), Fast: sched.FastFIFO, Body: inst.Body,
				})
				survivors += int64(sched.CountStatus(res, sched.Unnamed))
			}
			b.ReportMetric(float64(survivors)/float64(b.N), "survivors")
		})
	}
}

// BenchmarkE5Corollary7 measures the full loose renaming composition.
func BenchmarkE5Corollary7(b *testing.B) {
	for _, n := range []int{1 << 12, 1 << 14} {
		b.Run(fmt.Sprintf("n=%d,l=2", n), func(b *testing.B) {
			simBench(b, func() core.Instance {
				return core.NewCorollary7(n, core.RoundsConfig{Ell: 2}, nil)
			})
		})
	}
}

// BenchmarkE6LooseClusters measures the Lemma 8 algorithm.
func BenchmarkE6LooseClusters(b *testing.B) {
	for _, n := range []int{1 << 12, 1 << 14, 1 << 16} {
		b.Run(fmt.Sprintf("n=%d,l=1", n), func(b *testing.B) {
			var survivors int64
			for i := 0; i < b.N; i++ {
				inst := core.NewLooseClusters(n, core.ClustersConfig{Ell: 1})
				res := sched.Run(sched.Config{
					N: n, Seed: uint64(i), Fast: sched.FastFIFO, Body: inst.Body,
				})
				survivors += int64(sched.CountStatus(res, sched.Unnamed))
			}
			b.ReportMetric(float64(survivors)/float64(b.N), "survivors")
		})
	}
}

// BenchmarkE7Corollary9 measures the second loose composition.
func BenchmarkE7Corollary9(b *testing.B) {
	for _, n := range []int{1 << 12, 1 << 14} {
		b.Run(fmt.Sprintf("n=%d,l=1", n), func(b *testing.B) {
			simBench(b, func() core.Instance {
				return core.NewCorollary9(n, core.ClustersConfig{Ell: 1}, nil)
			})
		})
	}
}

// BenchmarkE8Comparison reruns the motivating comparison natively: the
// τ-register algorithm against the Batcher network and the folklore
// baselines (wall-clock on real cores; steps/proc-max carries the paper's
// metric).
func BenchmarkE8Comparison(b *testing.B) {
	const n = 1 << 12
	b.Run("tight-tau", func(b *testing.B) {
		nativeBench(b, func() core.Instance {
			return core.NewTight(n, core.TightConfig{SelfClocked: true, Padded: true})
		})
	})
	b.Run("sortnet-batcher", func(b *testing.B) {
		nativeBench(b, func() core.Instance { return sortnet.NewRenamerN(n) })
	})
	b.Run("uniform-probe", func(b *testing.B) {
		nativeBench(b, func() core.Instance { return baseline.NewUniformProbe(n) })
	})
	b.Run("segmented-probe", func(b *testing.B) {
		nativeBench(b, func() core.Instance { return baseline.NewSegmentedProbe(n, 0) })
	})
	b.Run("linear-scan", func(b *testing.B) {
		nativeBench(b, func() core.Instance { return baseline.NewLinearScan(n) })
	})
}

// BenchmarkE9SoftwareTAS measures the software-TAS overhead factor.
func BenchmarkE9SoftwareTAS(b *testing.B) {
	const n = 1 << 8
	b.Run("hardware", func(b *testing.B) {
		simBench(b, func() core.Instance {
			return core.NewLooseRounds(n, core.RoundsConfig{Ell: 1})
		})
	})
	b.Run("software", func(b *testing.B) {
		simBench(b, func() core.Instance {
			return core.NewLooseRoundsOn(n, core.RoundsConfig{Ell: 1},
				tas.NewRWSpace("rwtas", n, n))
		})
	})
}

// BenchmarkE10Adversaries measures scheduling-policy overhead and the
// algorithms' robustness to it.
func BenchmarkE10Adversaries(b *testing.B) {
	const n = 128
	policies := map[string]func() sched.Policy{
		"round-robin": sched.RoundRobin,
		"random":      sched.Random,
		"collider":    sched.Collider,
	}
	for name, mk := range policies {
		b.Run(name, func(b *testing.B) {
			var totalMax int64
			for i := 0; i < b.N; i++ {
				inst := core.NewTight(n, core.TightConfig{SelfClocked: true})
				res := sched.Run(sched.Config{
					N: n, Seed: uint64(i), Policy: mk(), Body: inst.Body,
					Spaces: inst.Probeables(),
				})
				if err := sched.VerifyUnique(res, n); err != nil {
					b.Fatal(err)
				}
				totalMax += sched.MaxSteps(res)
			}
			b.ReportMetric(float64(totalMax)/float64(b.N), "steps/proc-max")
		})
	}
}

// BenchmarkE11CountingDevice measures raw device throughput under real
// contention: concurrent goroutines hammering one self-clocked device.
func BenchmarkE11CountingDevice(b *testing.B) {
	for _, procs := range []int{8, 64, 512} {
		b.Run(fmt.Sprintf("procs=%d", procs), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				dev := taureg.NewDevice("bench", 64, 32, true)
				done := make(chan struct{})
				for g := 0; g < procs; g++ {
					go func(g int) {
						p := shm.NewProc(g, prng.NewStream(uint64(i), g), nil, 1<<20)
						r := p.Rand()
						for k := 0; k < 64; k++ {
							if dev.AcquireBit(p, r.Intn(64)) == taureg.Won {
								break
							}
						}
						done <- struct{}{}
					}(g)
				}
				for g := 0; g < procs; g++ {
					<-done
				}
				if dev.ConfirmedCount() > 32 {
					b.Fatal("threshold exceeded")
				}
			}
		})
	}
}

// BenchmarkE12Geometries contrasts the corrected and paper-literal layouts
// end to end.
func BenchmarkE12Geometries(b *testing.B) {
	const n = 1 << 10
	for _, kind := range []core.GeometryKind{core.Corrected, core.PaperLiteral} {
		b.Run(kind.String(), func(b *testing.B) {
			simBench(b, func() core.Instance {
				return core.NewTight(n, core.TightConfig{Geometry: kind, SelfClocked: true})
			})
		})
	}
}

// BenchmarkTightNative is the headline multicore benchmark: τ-register
// tight renaming on real goroutines and sync/atomic, up to 2^16 processes.
func BenchmarkTightNative(b *testing.B) {
	for _, n := range []int{1 << 12, 1 << 14, 1 << 16} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			nativeBench(b, func() core.Instance {
				return core.NewTight(n, core.TightConfig{SelfClocked: true, Padded: true})
			})
		})
	}
}

// BenchmarkCorollary7Native is the loose counterpart at scale.
func BenchmarkCorollary7Native(b *testing.B) {
	for _, n := range []int{1 << 14, 1 << 16} {
		b.Run(fmt.Sprintf("n=%d,l=2", n), func(b *testing.B) {
			nativeBench(b, func() core.Instance {
				return core.NewCorollary7(n, core.RoundsConfig{Ell: 2}, nil)
			})
		})
	}
}

// BenchmarkSortnetVariants compares the two practical sorting-network
// instantiations of the [7] construction: equal depth, different
// comparator counts (bitonic ≈ 2× registers).
func BenchmarkSortnetVariants(b *testing.B) {
	const n = 1 << 12
	entries := make([]int, n)
	for i := range entries {
		entries[i] = i
	}
	b.Run("odd-even", func(b *testing.B) {
		nativeBench(b, func() core.Instance {
			return sortnet.NewRenamer(sortnet.OddEvenMergeSort(sortnet.NextPow2(n)), entries)
		})
	})
	b.Run("bitonic", func(b *testing.B) {
		nativeBench(b, func() core.Instance {
			return sortnet.NewRenamer(sortnet.Bitonic(sortnet.NextPow2(n)), entries)
		})
	})
}

// BenchmarkAblationTightC sweeps the cluster constant c (the "suitably
// large constant" of §III): larger c means more requests per block and
// fewer fallback stragglers, but more rounds. The steps/proc-max metric
// exposes the trade-off ALGORITHMS.md §3 calls out.
func BenchmarkAblationTightC(b *testing.B) {
	const n = 1 << 12
	for _, c := range []float64{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("c=%g", c), func(b *testing.B) {
			simBench(b, func() core.Instance {
				return core.NewTight(n, core.TightConfig{C: c, SelfClocked: true})
			})
		})
	}
}

// BenchmarkAblationRoundsEll sweeps ℓ in the Lemma 6 algorithm: survivors
// shrink polynomially in (log log n) per unit of ℓ while the step budget
// multiplies, the trade-off of Corollary 7.
func BenchmarkAblationRoundsEll(b *testing.B) {
	const n = 1 << 14
	for _, ell := range []int{1, 2, 3} {
		b.Run(fmt.Sprintf("l=%d", ell), func(b *testing.B) {
			var survivors int64
			for i := 0; i < b.N; i++ {
				inst := core.NewLooseRounds(n, core.RoundsConfig{Ell: ell})
				res := sched.Run(sched.Config{
					N: n, Seed: uint64(i), Fast: sched.FastFIFO, Body: inst.Body,
				})
				survivors += int64(sched.CountStatus(res, sched.Unnamed))
			}
			b.ReportMetric(float64(survivors)/float64(b.N), "survivors")
		})
	}
}

// BenchmarkAblationBackfill compares the backfill strategies on the
// Corollary 7 overflow workload.
func BenchmarkAblationBackfill(b *testing.B) {
	const n = 1 << 12
	strategies := map[string]backfill.Strategy{
		"uniform": backfill.Uniform{},
		"sweep":   backfill.Sweep{},
		"hybrid":  backfill.Hybrid{},
	}
	for name, strat := range strategies {
		b.Run(name, func(b *testing.B) {
			simBench(b, func() core.Instance {
				return core.NewCorollary7(n, core.RoundsConfig{Ell: 2}, strat)
			})
		})
	}
}

// BenchmarkE13Adaptive measures the adaptive extension: steps stay
// O(log k) as the (unknown) participant count grows.
func BenchmarkE13Adaptive(b *testing.B) {
	for _, k := range []int{1 << 8, 1 << 10, 1 << 12} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			var totalMax int64
			for i := 0; i < b.N; i++ {
				inst := core.NewAdaptive(1<<14, core.AdaptiveConfig{})
				res := sched.Run(sched.Config{
					N: k, Seed: uint64(i), Fast: sched.FastFIFO, Body: inst.Body,
				})
				if err := sched.VerifyUnique(res, inst.M()); err != nil {
					b.Fatal(err)
				}
				totalMax += sched.MaxSteps(res)
			}
			b.ReportMetric(float64(totalMax)/float64(b.N), "steps/proc-max")
		})
	}
}

// BenchmarkChurnSim measures the canonical E15 churn workload (k = n/4
// workers cycling names on a capacity-n arena, longlived.DefaultChurn) on
// the deterministic simulator and reports the mean shared-memory steps per
// successful acquire. The BENCH_2.json trajectory records the same
// workload; see cmd/renamebench -bench2.
func BenchmarkChurnSim(b *testing.B) {
	for _, backend := range longlived.ChurnBackends() {
		for _, n := range []int{1 << 10, 1 << 12, 1 << 14} {
			b.Run(fmt.Sprintf("%s/n=%d", backend.Name, n), func(b *testing.B) {
				k := n / 4
				var steps float64
				for i := 0; i < b.N; i++ {
					arena := backend.Make(n)
					mon := longlived.NewMonitor(arena.NameBound())
					sched.Run(sched.Config{
						N:         k,
						Seed:      uint64(i),
						Fast:      sched.FastFIFO,
						Body:      longlived.ChurnBody(arena, mon, longlived.DefaultChurn),
						AfterStep: arena.Clock(),
					})
					if err := mon.Err(); err != nil {
						b.Fatal(err)
					}
					if held := arena.Held(); held != 0 {
						b.Fatalf("%d names held after drain", held)
					}
					steps += mon.StepsPerAcquire()
				}
				b.ReportMetric(steps/float64(b.N), "steps/acquire")
			})
		}
	}
}

// BenchmarkChurnNative measures public-API arena churn on real goroutines:
// each iteration is one full acquire/release cycle per worker.
func BenchmarkChurnNative(b *testing.B) {
	for _, backend := range stormBackends() {
		b.Run(string(backend), func(b *testing.B) {
			arena, err := NewArena(ArenaConfig{Capacity: 256, Backend: backend, Seed: 1})
			if err != nil {
				b.Fatal(err)
			}
			// b.Fatal must not be called from RunParallel worker
			// goroutines; collect the first error and fail afterwards.
			var firstErr atomic.Pointer[error]
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					name, err := arena.Acquire()
					if err == nil {
						err = arena.Release(name)
					}
					if err != nil {
						firstErr.CompareAndSwap(nil, &err)
						return
					}
				}
			})
			if p := firstErr.Load(); p != nil {
				b.Fatal(*p)
			}
		})
	}
}

// BenchmarkShardedNative is the headline benchmark of the striped frontend:
// tight provisioning (capacity = workers), every worker cycling
// acquire/yield/release so the arena runs at full occupancy. shards=0 is
// the unsharded level-array baseline; the steps/acquire metric carries the
// machine-independent structural cost (home-shard scans are capacity/S
// long instead of capacity).
func BenchmarkShardedNative(b *testing.B) {
	const workers = 64
	churn := longlived.ChurnConfig{Cycles: 50, Yield: true}
	run := func(b *testing.B, mk func() longlived.Arena) {
		b.Helper()
		var steps float64
		for i := 0; i < b.N; i++ {
			arena := mk()
			mon := longlived.NewMonitor(arena.NameBound())
			sched.RunNative(workers, uint64(i), longlived.ChurnBody(arena, mon, churn))
			if err := mon.Err(); err != nil {
				b.Fatal(err)
			}
			if held := arena.Held(); held != 0 {
				b.Fatalf("%d names held after drain", held)
			}
			steps += mon.StepsPerAcquire()
		}
		b.ReportMetric(steps/float64(b.N), "steps/acquire")
	}
	b.Run("shards=0", func(b *testing.B) {
		run(b, func() longlived.Arena {
			return longlived.NewLevel(workers, longlived.LevelConfig{Padded: true, Label: "bench-single"})
		})
	})
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			run(b, func() longlived.Arena {
				return sharded.New(workers, sharded.Config{
					Shards: shards, Padded: true, Label: fmt.Sprintf("bench-s%d", shards),
				})
			})
		})
	}
}

// BenchmarkWordEngineNative contrasts the per-bit probe path with the
// word-granular claim engine on the level arena under tight provisioning
// (capacity = workers, full occupancy): the regime where the probe path
// pays random-probe misses plus a per-name backstop scan and the word path
// pays one snapshot-scan-CAS per word. steps/acquire carries the
// machine-independent reduction that BENCH_4.json records.
func BenchmarkWordEngineNative(b *testing.B) {
	const workers = 64
	churn := longlived.ChurnConfig{Cycles: 50, Yield: true}
	for _, wordScan := range []bool{false, true} {
		name := "scan=bit"
		if wordScan {
			name = "scan=word"
		}
		b.Run(name, func(b *testing.B) {
			var steps float64
			for i := 0; i < b.N; i++ {
				arena := longlived.NewLevel(workers, longlived.LevelConfig{
					WordScan: wordScan, Padded: true, Label: "bench-we-" + name,
				})
				mon := longlived.NewMonitor(arena.NameBound())
				sched.RunNative(workers, uint64(i), longlived.ChurnBody(arena, mon, churn))
				if err := mon.Err(); err != nil {
					b.Fatal(err)
				}
				if held := arena.Held(); held != 0 {
					b.Fatalf("%d names held after drain", held)
				}
				steps += mon.StepsPerAcquire()
			}
			b.ReportMetric(steps/float64(b.N), "steps/acquire")
		})
	}
}

// BenchmarkBatchAcquireRelease measures the public batch API: one
// iteration is one AcquireN/ReleaseAll cycle of the given batch size, so
// ns/op divided by the batch size is the amortized per-name cost the
// batch API exists to lower.
func BenchmarkBatchAcquireRelease(b *testing.B) {
	for _, batch := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			arena, err := NewArena(ArenaConfig{Capacity: 256, Seed: 1})
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				names, err := arena.AcquireN(batch)
				if err != nil {
					b.Fatal(err)
				}
				if err := arena.ReleaseAll(names); err != nil {
					b.Fatal(err)
				}
			}
			st := arena.Stats()
			b.ReportMetric(float64(st.AcquireSteps)/float64(st.Acquires), "steps/acquire")
		})
	}
}

// BenchmarkCountingDeviceParallel measures raw acquisition throughput on
// real cores via the public wrapper.
func BenchmarkCountingDeviceParallel(b *testing.B) {
	dev, err := NewCountingDevice(64, 64)
	if err != nil {
		b.Fatal(err)
	}
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			dev.Acquire(1, 1)
		}
	})
}

// BenchmarkPublicAPI exercises the facade end to end.
func BenchmarkPublicAPI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := Rename(Config{N: 1 << 12, Algorithm: TightTau, Seed: uint64(i)})
		if err != nil {
			b.Fatal(err)
		}
		if err := res.Verify(); err != nil {
			b.Fatal(err)
		}
	}
}
