package shmrename

import (
	"math"
	"strings"
	"testing"
)

func TestRenameAllAlgorithmsSimulated(t *testing.T) {
	for _, algo := range Algorithms() {
		cfg := Config{N: 128, Algorithm: algo, Seed: 7, Simulate: true}
		res, err := Rename(cfg)
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if err := res.Verify(); err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		named := 0
		for _, name := range res.Names {
			if name >= 0 {
				named++
			}
		}
		switch algo {
		case LooseRounds, LooseClusters:
			// Almost-tight: survivors allowed.
			if named+res.Survivors != 128 {
				t.Fatalf("%s: named %d + survivors %d != n", algo, named, res.Survivors)
			}
		default:
			if named != 128 {
				t.Fatalf("%s: only %d named", algo, named)
			}
		}
		if res.MaxSteps < 1 {
			t.Fatalf("%s: no steps recorded", algo)
		}
		if res.Algorithm == "" {
			t.Fatalf("%s: empty label", algo)
		}
	}
}

func TestRenameDeterministicWhenSimulated(t *testing.T) {
	run := func() *Result {
		res, err := Rename(Config{N: 100, Algorithm: TightTau, Seed: 3, Simulate: true})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	for pid := range a.Names {
		if a.Names[pid] != b.Names[pid] || a.Steps[pid] != b.Steps[pid] {
			t.Fatalf("pid %d differs across identical runs", pid)
		}
	}
}

func TestRenameNative(t *testing.T) {
	res, err := Rename(Config{N: 256, Algorithm: TightTau, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Verify(); err != nil {
		t.Fatal(err)
	}
	for pid, name := range res.Names {
		if name < 0 || name >= 256 {
			t.Fatalf("pid %d: name %d", pid, name)
		}
	}
}

func TestRenameSchedules(t *testing.T) {
	for _, schedule := range []string{"", "fifo", "random", "round-robin", "collider", "starve"} {
		res, err := Rename(Config{
			N: 64, Algorithm: Corollary7, Seed: 9, Simulate: true, Schedule: schedule,
		})
		if err != nil {
			t.Fatalf("schedule %q: %v", schedule, err)
		}
		if err := res.Verify(); err != nil {
			t.Fatalf("schedule %q: %v", schedule, err)
		}
	}
}

func TestRenameWithCrashes(t *testing.T) {
	res, err := Rename(Config{
		N: 100, Algorithm: TightTau, Seed: 13,
		Simulate: true, CrashFraction: 0.3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Crashed == 0 {
		t.Fatal("no crashes with CrashFraction 0.3")
	}
	if err := res.Verify(); err != nil {
		t.Fatal(err)
	}
	named := 0
	for _, n := range res.Names {
		if n >= 0 {
			named++
		}
	}
	if named+res.Crashed != 100 {
		t.Fatalf("named %d + crashed %d != 100", named, res.Crashed)
	}
}

func TestRenameLooseSpaceSizes(t *testing.T) {
	res7, err := Rename(Config{N: 1 << 12, Algorithm: Corollary7, Ell: 2, Seed: 1, Simulate: true})
	if err != nil {
		t.Fatal(err)
	}
	if res7.M <= 1<<12 {
		t.Fatalf("corollary7 m = %d, want > n", res7.M)
	}
	// At equal ℓ the Corollary 9 overflow 2n/(log n)^ℓ is far below the
	// Corollary 7 overflow 2n/(log log n)^ℓ.
	res9, err := Rename(Config{N: 1 << 12, Algorithm: Corollary9, Ell: 2, Seed: 1, Simulate: true})
	if err != nil {
		t.Fatal(err)
	}
	if res9.M <= 1<<12 || res9.M >= res7.M {
		t.Fatalf("corollary9 m = %d (corollary7 m = %d)", res9.M, res7.M)
	}
}

func TestRenameConfigErrors(t *testing.T) {
	cases := []Config{
		{N: 0},
		{N: 4, Algorithm: "nope", Simulate: true},
		{N: 4, Simulate: true, Schedule: "warp"},
		{N: 4, CrashFraction: 0.5},                  // crashes need Simulate
		{N: 4, Simulate: true, CrashFraction: -0.1}, // out of range
		{N: 1, Algorithm: LooseClusters, Simulate: true},
	}
	for i, cfg := range cases {
		if _, err := Rename(cfg); err == nil {
			t.Fatalf("case %d accepted: %+v", i, cfg)
		}
	}
}

// TestRenameParameterValidation pins the up-front Ell/C validation: out of
// range tuning parameters must be rejected with a descriptive error, never
// silently replaced by defaults, while the documented zero-means-default
// and in-range values stay accepted.
func TestRenameParameterValidation(t *testing.T) {
	cases := []struct {
		name    string
		cfg     Config
		wantErr string // substring of the error, "" means accept
	}{
		{"ell default zero", Config{N: 16, Algorithm: LooseRounds, Simulate: true}, ""},
		{"ell in range", Config{N: 16, Algorithm: LooseRounds, Ell: 3, Simulate: true}, ""},
		{"ell max", Config{N: 16, Algorithm: LooseRounds, Ell: MaxEll, Simulate: true}, ""},
		{"ell negative", Config{N: 16, Algorithm: LooseRounds, Ell: -1, Simulate: true}, "Config.Ell"},
		{"ell too large", Config{N: 16, Algorithm: LooseRounds, Ell: MaxEll + 1, Simulate: true}, "Config.Ell"},
		{"c default zero", Config{N: 16, Algorithm: TightTau, Simulate: true}, ""},
		{"c in range", Config{N: 16, Algorithm: TightTau, C: 4, Simulate: true}, ""},
		{"c max", Config{N: 16, Algorithm: TightTau, C: MaxC, Simulate: true}, ""},
		{"c negative", Config{N: 16, Algorithm: TightTau, C: -2, Simulate: true}, "Config.C"},
		{"c fractional below one", Config{N: 16, Algorithm: TightTau, C: 0.5, Simulate: true}, "Config.C"},
		{"c too large", Config{N: 16, Algorithm: TightTau, C: MaxC + 1, Simulate: true}, "Config.C"},
		{"c NaN", Config{N: 16, Algorithm: TightTau, C: math.NaN(), Simulate: true}, "Config.C"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Rename(tc.cfg)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("rejected: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("accepted: %+v", tc.cfg)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

func TestVerifyCatchesViolations(t *testing.T) {
	r := &Result{M: 4, Names: []int{0, 0}}
	if r.Verify() == nil {
		t.Fatal("duplicate not detected")
	}
	r = &Result{M: 4, Names: []int{5}}
	if r.Verify() == nil {
		t.Fatal("out of range not detected")
	}
	r = &Result{M: 4, Names: []int{1, -1, 2}}
	if err := r.Verify(); err != nil {
		t.Fatalf("valid result rejected: %v", err)
	}
}

func TestAlgorithmsListStable(t *testing.T) {
	if len(Algorithms()) != 9 {
		t.Fatalf("Algorithms() = %v", Algorithms())
	}
}
