//go:build unix

package shmrename_test

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"shmrename"
)

// ExampleOpenArena opens an mmap-backed cross-process arena twice: the
// second handle attaches to the same file, sees the first handle's names
// as held, and — once the first holder's lease lapses with a liveness
// oracle that declares it dead — sweeps them back into the pool.
func ExampleOpenArena() {
	dir, err := os.MkdirTemp("", "openarena-example")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "names")

	// Alive normally defaults to kill(pid, 0); forcing "dead" here stands
	// in for a holder process that was SIGKILLed.
	cfg := shmrename.ArenaConfig{
		Capacity: 32,
		Seed:     1,
		Lease: &shmrename.LeaseConfig{
			TTL:   time.Millisecond,
			Alive: func(uint64) bool { return false },
		},
	}
	a, err := shmrename.OpenArena(path, cfg)
	if err != nil {
		panic(err)
	}
	names, err := a.AcquireN(8)
	if err != nil {
		panic(err)
	}
	fmt.Println("leased:", a.Leased())
	fmt.Println("acquired:", len(names))
	if err := a.Close(); err != nil { // walk away holding all 8 names
		panic(err)
	}

	time.Sleep(5 * time.Millisecond) // let the abandoned leases lapse
	b, err := shmrename.OpenArena(path, cfg)
	if err != nil {
		panic(err)
	}
	defer b.Close()
	b.SweepStale()
	fmt.Println("held after recovery:", b.Held())
	fmt.Println("reclaimed:", b.Stats().Reclaimed)
	// Output:
	// leased: true
	// acquired: 8
	// held after recovery: 0
	// reclaimed: 8
}
