package shmrename

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"shmrename/internal/longlived"
	"shmrename/internal/prng"
	"shmrename/internal/sharded"
	"shmrename/internal/shm"
)

// ArenaBackend selects a long-lived arena implementation.
type ArenaBackend string

// Available arena backends.
const (
	// ArenaLevel is the LevelArray-style arena: levels of geometrically
	// growing packed TAS bitmaps, random probes falling through to a
	// deterministic backstop scan. Issued names track the instantaneous
	// occupancy. The default.
	ArenaLevel ArenaBackend = "level-array"
	// ArenaTau is the long-lived adaptation of the paper's τ-register
	// algorithm: counting devices front blocks of names, and releases
	// return both the name and the device bit.
	ArenaTau ArenaBackend = "tau-longlived"
	// ArenaBackendSharded is the striped multicore frontend: the name
	// space is partitioned across ArenaConfig.Shards level-array
	// sub-arenas, each goroutine keeps a cached home-shard affinity, and a
	// full home shard overflows to ArenaConfig.StealProbes neighbor shards
	// before a deterministic full sweep. Issued names stay within the
	// shards × per-shard-bound tightness envelope (see NameBound).
	ArenaBackendSharded ArenaBackend = "sharded"
)

// ArenaConfig parameterizes a long-lived renaming arena.
type ArenaConfig struct {
	// Capacity is the number of concurrent holders the arena guarantees
	// to serve (required, >= 1). More may be admitted on a best-effort
	// basis; see Arena.Acquire.
	Capacity int
	// Backend defaults to ArenaLevel.
	Backend ArenaBackend
	// Probes tunes the per-level random probe count (ArenaLevel) or the
	// random device-attempt count (ArenaTau). 0 selects the default.
	Probes int
	// Shards is the stripe count of the sharded backend: the arena is
	// partitioned into Shards independent sub-arenas so concurrent
	// Acquire/Release traffic scales with cores. Only meaningful with
	// ArenaBackendSharded (setting it with another backend is a config
	// error). 0 selects GOMAXPROCS clamped to [1, Capacity]; explicit
	// values must lie in [1, Capacity].
	Shards int
	// StealProbes bounds the work-stealing probes of the sharded backend:
	// how many randomly chosen neighbor shards an acquire tries after its
	// home shard reports full, before falling back to a full sweep. Only
	// meaningful with ArenaBackendSharded. 0 selects the default (2).
	StealProbes int
	// Seed drives client-side randomness (probe targets).
	Seed uint64
}

// Arena full/validation errors.
var (
	// ErrArenaFull reports that Acquire found no free slot across several
	// full passes. It signals over-subscription or heavy churn contention
	// (a concurrent stream of acquires and releases can race every scan
	// even below capacity, though that is vanishingly unlikely across the
	// retry passes); treat it as backpressure and retry after backing off.
	ErrArenaFull = errors.New("shmrename: arena full")
	// ErrNotHeld reports a release of a name that is not currently held.
	ErrNotHeld = errors.New("shmrename: name not held")
)

// acquirePasses bounds native Acquire passes before ErrArenaFull: each
// failed pass scanned the full backstop, so by then the arena was observed
// at capacity several times over.
const acquirePasses = 8

// Arena is a long-lived renaming arena: names are acquired, released, and
// reacquired indefinitely, and at every instant the live holders' names are
// pairwise distinct. All methods are safe for concurrent use from multiple
// goroutines. Construct with NewArena.
//
// This is the native-mode surface (real goroutines on sync/atomic); the
// deterministic adversarial simulator drives the same backends through
// internal/longlived and the E15 churn experiment.
type Arena struct {
	impl   longlived.Arena
	seed   uint64
	nextID atomic.Int64
	procs  sync.Pool
}

// NewArena builds a long-lived renaming arena.
func NewArena(cfg ArenaConfig) (*Arena, error) {
	if cfg.Capacity < 1 {
		return nil, errors.New("shmrename: ArenaConfig.Capacity must be >= 1")
	}
	// Operation indices are int32 on the hot path; the level ladder's name
	// bound stays below 4x capacity.
	if cfg.Capacity >= 1<<29 {
		return nil, fmt.Errorf("shmrename: ArenaConfig.Capacity must be < 2^29, got %d", cfg.Capacity)
	}
	if cfg.Probes < 0 {
		return nil, fmt.Errorf("shmrename: ArenaConfig.Probes must be >= 0, got %d", cfg.Probes)
	}
	if cfg.Backend != ArenaBackendSharded {
		if cfg.Shards != 0 {
			return nil, fmt.Errorf("shmrename: ArenaConfig.Shards is only meaningful with the %q backend, got Shards=%d with backend %q",
				ArenaBackendSharded, cfg.Shards, cfg.Backend)
		}
		if cfg.StealProbes != 0 {
			return nil, fmt.Errorf("shmrename: ArenaConfig.StealProbes is only meaningful with the %q backend, got StealProbes=%d with backend %q",
				ArenaBackendSharded, cfg.StealProbes, cfg.Backend)
		}
	}
	var impl longlived.Arena
	switch cfg.Backend {
	case "", ArenaLevel:
		impl = longlived.NewLevel(cfg.Capacity, longlived.LevelConfig{
			Probes:    cfg.Probes,
			MaxPasses: acquirePasses,
			Padded:    true,
		})
	case ArenaTau:
		impl = longlived.NewTau(cfg.Capacity, longlived.TauConfig{
			Probes:      cfg.Probes,
			MaxPasses:   acquirePasses,
			SelfClocked: true,
			Padded:      true,
		})
	case ArenaBackendSharded:
		shards := cfg.Shards
		if shards < 0 || shards > cfg.Capacity {
			return nil, fmt.Errorf("shmrename: ArenaConfig.Shards must lie in [1, Capacity=%d], got %d", cfg.Capacity, shards)
		}
		if shards == 0 {
			shards = runtime.GOMAXPROCS(0)
			if shards > cfg.Capacity {
				shards = cfg.Capacity
			}
		}
		if cfg.StealProbes < 0 {
			return nil, fmt.Errorf("shmrename: ArenaConfig.StealProbes must be >= 0, got %d", cfg.StealProbes)
		}
		impl = sharded.New(cfg.Capacity, sharded.Config{
			Shards:      shards,
			StealProbes: cfg.StealProbes,
			MaxPasses:   acquirePasses,
			Probes:      cfg.Probes,
			Padded:      true,
		})
	default:
		return nil, fmt.Errorf("shmrename: unknown arena backend %q", cfg.Backend)
	}
	return &Arena{impl: impl, seed: cfg.Seed}, nil
}

// proc hands out a pooled ungated process context; each fresh context gets
// its own deterministic randomness stream.
func (a *Arena) proc() *shm.Proc {
	if p, ok := a.procs.Get().(*shm.Proc); ok {
		return p
	}
	id := int(a.nextID.Add(1) - 1)
	return shm.NewProc(id, prng.NewStream(a.seed, id), nil, 0)
}

// Capacity returns the guaranteed concurrent-holder count.
func (a *Arena) Capacity() int { return a.impl.Capacity() }

// NameBound bounds issued names: they lie in [0, NameBound).
func (a *Arena) NameBound() int { return a.impl.NameBound() }

// Held returns the number of currently held names (a snapshot).
func (a *Arena) Held() int { return a.impl.Held() }

// Backend returns the backend's descriptive label.
func (a *Arena) Backend() string { return a.impl.Label() }

// Acquire claims a name that is unique among the arena's current holders.
// It returns ErrArenaFull after repeatedly finding no free slot — the
// steady-state signal of more than Capacity concurrent holders, though
// sustained churn racing every retry pass can produce it early.
func (a *Arena) Acquire() (int, error) {
	p := a.proc()
	name := a.impl.Acquire(p)
	a.procs.Put(p)
	if name < 0 {
		return 0, ErrArenaFull
	}
	return name, nil
}

// Release returns an acquired name to the pool. Only the holder may release
// a name; releasing a name that is not held returns an error wrapping
// ErrNotHeld (a best-effort guard — the arena cannot tell holders apart).
// An out-of-range name is by definition not held, so it reports ErrNotHeld
// too, with the offending name and the valid range in the error text.
func (a *Arena) Release(name int) error {
	if name < 0 || name >= a.impl.NameBound() {
		return fmt.Errorf("%w: name %d outside [0, %d)", ErrNotHeld, name, a.impl.NameBound())
	}
	if !a.impl.IsHeld(name) {
		return fmt.Errorf("%w: name %d", ErrNotHeld, name)
	}
	p := a.proc()
	a.impl.Release(p, name)
	a.procs.Put(p)
	return nil
}
