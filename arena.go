package shmrename

import (
	"errors"
	"fmt"
	"os"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"shmrename/internal/integrity"
	"shmrename/internal/leasecache"
	"shmrename/internal/longlived"
	"shmrename/internal/prng"
	"shmrename/internal/recovery"
	"shmrename/internal/registry"
	_ "shmrename/internal/registry/all" // link every backend's registration
	"shmrename/internal/sharded"
	"shmrename/internal/shm"
)

// ArenaBackend selects a long-lived arena implementation.
type ArenaBackend string

// Available arena backends.
const (
	// ArenaLevel is the LevelArray-style arena: levels of geometrically
	// growing packed TAS bitmaps, random probes falling through to a
	// deterministic backstop scan. Issued names track the instantaneous
	// occupancy. The default.
	ArenaLevel ArenaBackend = "level-array"
	// ArenaTau is the long-lived adaptation of the paper's τ-register
	// algorithm: counting devices front blocks of names, and releases
	// return both the name and the device bit.
	ArenaTau ArenaBackend = "tau-longlived"
	// ArenaElastic is the contention-proportional level arena: the same
	// geometric ladder as ArenaLevel, but only a prefix of it is resident —
	// levels are appended under load and drained/retired when occupancy
	// falls, without blocking concurrent acquires, so probe work and
	// resident memory track live holders instead of the provisioned peak.
	// ArenaConfig.Elastic tunes the policy; with this backend the default
	// policy applies even when that field is nil. (Equivalently: ArenaLevel
	// plus a non-nil ArenaConfig.Elastic selects this implementation.)
	ArenaElastic ArenaBackend = "elastic-level"
	// ArenaBackendSharded is the striped multicore frontend: the name
	// space is partitioned across ArenaConfig.Shards level-array
	// sub-arenas, each goroutine keeps a cached home-shard affinity, and a
	// full home shard overflows to ArenaConfig.StealProbes neighbor shards
	// before a deterministic full sweep. Issued names stay within the
	// shards × per-shard-bound tightness envelope (see NameBound).
	ArenaBackendSharded ArenaBackend = "sharded"
)

// ProbeMode selects the granularity at which an arena searches for free
// slots.
type ProbeMode string

// Probe modes.
const (
	// ProbeAuto selects the default for the execution surface: the public
	// arena runs natively, so it gets the word-granular engine (ProbeWord).
	ProbeAuto ProbeMode = ""
	// ProbeWord is the word-granular claim engine: probes snapshot a whole
	// 64-name bitmap word and claim a free bit in one CAS, fallback scans
	// walk words instead of names, and batch acquires claim up to 64 names
	// per shared-memory access. The default.
	ProbeWord ProbeMode = "word"
	// ProbeBit is the paper's per-bit probe path: every probe is a single
	// TAS on one name. It matches the deterministic simulator's golden
	// fingerprints and costs one shared-memory access per examined name —
	// choose it to reproduce the paper's cost model, not for throughput.
	ProbeBit ProbeMode = "bit"
)

// ArenaConfig parameterizes a long-lived renaming arena.
type ArenaConfig struct {
	// Capacity is the number of concurrent holders the arena guarantees
	// to serve (required, >= 1). More may be admitted on a best-effort
	// basis; see Arena.Acquire.
	Capacity int
	// Backend defaults to ArenaLevel. Besides the named constants, any
	// backend registered with the in-process backend registry resolves by
	// its registry name (e.g. "lease-cached"); registry backends take only
	// Capacity and Lease — the named-backend tuning knobs (Probes, Probe,
	// Shards, StealProbes, LeaseBlocks) are config errors with them.
	Backend ArenaBackend
	// Probes tunes the per-level random probe count (ArenaLevel) or the
	// random device-attempt count (ArenaTau). 0 selects the default.
	Probes int
	// Shards is the stripe count of the sharded backend: the arena is
	// partitioned into Shards independent sub-arenas so concurrent
	// Acquire/Release traffic scales with cores. Only meaningful with
	// ArenaBackendSharded (setting it with another backend is a config
	// error). 0 selects GOMAXPROCS clamped to [1, Capacity]; explicit
	// values must lie in [1, Capacity].
	Shards int
	// StealProbes bounds the work-stealing probes of the sharded backend:
	// how many randomly chosen neighbor shards an acquire tries after its
	// home shard reports full, before falling back to a full sweep. Only
	// meaningful with ArenaBackendSharded. 0 selects the default (2).
	StealProbes int
	// Probe selects the slot-search granularity: ProbeWord (the default)
	// or ProbeBit. See the ProbeMode constants.
	Probe ProbeMode
	// LeaseBlocks enables per-worker word-block lease caches: workers
	// lease blocks of LeaseBlocks names (at most 64 — one bitmap word,
	// claimed in a single word-granular batch step) and then serve Acquire
	// and absorb Release thread-locally, with zero shared-memory
	// operations on the fast path. Released names recirculate through the
	// releasing worker's cache, so steady-state churn stops touching the
	// backend entirely — the regime BENCH_5.json records. The trade-off is
	// name tightness: cached names are claimed but serve nobody, so
	// provision Capacity above the expected peak holders (see PERF.md).
	// Caching composes with Lease — a cached block is one lease, renewed
	// by Heartbeat and reclaimed wholesale if this handle crashes. 0 (the
	// default) disables caching; enabling it requires the word-granular
	// claim engine (ProbeBit is a config error).
	LeaseBlocks int
	// Elastic, when non-nil, makes the arena contention-proportional: the
	// geometric level ladder starts at MinCapacity's worth of levels and
	// grows/shrinks with live occupancy, so probe work and resident
	// bitmap+stamp memory track current holders instead of the provisioned
	// peak (see Stats().CapacityNow). Resizes never block concurrent
	// acquires, and a shrink never reclaims a held name. Supported by the
	// level-array and sharded backends (per-shard elasticity) and by
	// registry backends declaring the Elastic capability; a config error
	// elsewhere. Nil (the default) keeps every backend fixed-capacity —
	// the existing deterministic fingerprints and benchmark gates are
	// unaffected.
	Elastic *ElasticConfig
	// Seed drives client-side randomness (probe targets).
	Seed uint64
	// Lease enables crash recovery: every claim carries a holder/epoch
	// lease stamp, Heartbeat renews this handle's leases, and stale leases
	// of dead holders are swept back into the pool (by the background
	// reaper, SweepStale calls, and — for mmap-backed arenas — every
	// OpenArena). Nil (the default) disables the lease layer at zero cost;
	// enabling it adds one shared-memory step per name to each acquire and
	// release (the stamp publish/retire CAS).
	Lease *LeaseConfig
	// Integrity enables the self-healing layer: an integrity scrubber that
	// verifies the arena's conservation invariant (every name free, parked,
	// or granted — never two at once), repairs repairable damage, and —
	// with Quarantine on — withdraws irreparably damaged bitmap words from
	// circulation instead of risking a duplicate grant. Health surfaces the
	// verdict, Scrub runs a pass on demand, and ScrubInterval runs them in
	// the background. Requires Lease (the scrubber reads the lease stamps);
	// nil (the default) disables the layer at zero cost.
	Integrity *IntegrityConfig
}

// IntegrityConfig parameterizes the self-healing integrity layer of an
// arena. See ArenaConfig.Integrity.
type IntegrityConfig struct {
	// ScrubInterval, when positive, starts a background goroutine running
	// one integrity scrub every interval; Close stops it. Zero means no
	// background scrubbing — passes happen only on Scrub calls.
	ScrubInterval time.Duration
	// Quarantine enables containment: a bitmap word with irreparable
	// damage (state that no legal execution produces, e.g. a live client
	// stamp over a clear claim bit) is withdrawn from circulation whole —
	// its free names are seized under quarantine stamps, Capacity drops by
	// the quarantined count, and Health reports Degraded. Off, such damage
	// is only detected and reported (Health Failed); nothing is contained.
	// Quarantine requires a backend whose claim bits carry no side state
	// (level-array, sharded, lease-cached, persist); on others the
	// violation is reported unrepaired.
	Quarantine bool
}

func (c *IntegrityConfig) validate() error {
	if c.ScrubInterval < 0 {
		return fmt.Errorf("shmrename: IntegrityConfig.ScrubInterval must be >= 0, got %v", c.ScrubInterval)
	}
	return nil
}

// Health classifies an arena's integrity state; see Arena.Health.
type Health int

// Health states.
const (
	// Healthy: no unrepaired damage and no quarantined capacity. Arenas
	// without the integrity layer always report Healthy.
	Healthy Health = iota
	// Degraded: the scrubber contained damage by quarantining names — the
	// arena is safe (no duplicate grants) but serves less than its
	// configured capacity. Plan to rebuild the namespace.
	Degraded
	// Failed: damage was detected that the arena could not repair or
	// contain — a lease-cache conservation violation, or an integrity
	// violation with quarantine unavailable. Exclusivity can no longer be
	// vouched for; acquire/release return errors wrapping ErrCorrupted
	// when the failure came from the cache layer.
	Failed
)

// String implements fmt.Stringer.
func (h Health) String() string {
	switch h {
	case Healthy:
		return "healthy"
	case Degraded:
		return "degraded"
	case Failed:
		return "failed"
	}
	return fmt.Sprintf("Health(%d)", int(h))
}

// ElasticConfig parameterizes the contention-proportional resize policy of
// an arena. See ArenaConfig.Elastic. The zero value selects defaults for
// every knob.
type ElasticConfig struct {
	// MinCapacity floors the resident ladder: the arena never shrinks
	// below the level prefix covering it. 0 selects the smallest level
	// (64 names; per shard on the sharded backend).
	MinCapacity int
	// MaxCapacity caps growth. 0 selects Capacity; an explicit value must
	// be >= Capacity and extends the ladder's reachable ceiling beyond the
	// configured guarantee (Arena.Capacity then reports MaxCapacity).
	MaxCapacity int
	// GrowAt is the occupancy fraction of the current capacity at which an
	// acquire proactively appends the next level, in (0, 1). A failed full
	// pass (the ErrArenaFull signal) grows regardless. 0 selects 0.75.
	GrowAt float64
	// ShrinkAt is the occupancy hysteresis for draining the top level, as
	// a fraction of the capacity without that level; it must stay below
	// GrowAt. 0 selects 0.25.
	ShrinkAt float64
}

// validate checks the knobs against the configured capacity and resolves
// the growth ceiling.
func (c *ElasticConfig) validate(capacity int) (int, error) {
	maxCap := c.MaxCapacity
	if maxCap == 0 {
		maxCap = capacity
	}
	if maxCap < capacity {
		return 0, fmt.Errorf("shmrename: ElasticConfig.MaxCapacity must be 0 or >= Capacity=%d, got %d", capacity, maxCap)
	}
	if maxCap >= 1<<29 {
		return 0, fmt.Errorf("shmrename: ElasticConfig.MaxCapacity must be < 2^29, got %d", maxCap)
	}
	if c.MinCapacity < 0 || c.MinCapacity > maxCap {
		return 0, fmt.Errorf("shmrename: ElasticConfig.MinCapacity must lie in [0, MaxCapacity=%d], got %d", maxCap, c.MinCapacity)
	}
	growAt := c.GrowAt
	if growAt == 0 {
		growAt = 0.75
	}
	if growAt < 0 || growAt >= 1 {
		return 0, fmt.Errorf("shmrename: ElasticConfig.GrowAt must lie in (0, 1), got %v", c.GrowAt)
	}
	if c.ShrinkAt < 0 || c.ShrinkAt >= growAt {
		return 0, fmt.Errorf("shmrename: ElasticConfig.ShrinkAt must lie in [0, GrowAt=%v), got %v", growAt, c.ShrinkAt)
	}
	return maxCap, nil
}

// params translates the public knobs into the registry's common form.
func (c *ElasticConfig) params() *registry.ElasticParams {
	return &registry.ElasticParams{
		MinCapacity: c.MinCapacity,
		GrowAt:      c.GrowAt,
		ShrinkAt:    c.ShrinkAt,
	}
}

// LeaseConfig parameterizes the crash-recovery lease layer of an arena.
// See ArenaConfig.Lease.
type LeaseConfig struct {
	// TTL is how long a lease stays valid without renewal (required,
	// > 0). A holder that neither releases nor heartbeats for longer than
	// TTL is presumed crashed, and the next sweep returns its names to the
	// pool. Resolution is one millisecond.
	TTL time.Duration
	// Reaper, when positive, starts a background goroutine that sweeps the
	// arena every Reaper interval; Close stops it. Zero means no background
	// reaper — sweeps happen only on SweepStale (and at OpenArena time for
	// mmap-backed arenas).
	Reaper time.Duration
	// Alive, when non-nil, is a liveness oracle consulted before reclaiming
	// a TTL-stale holder: reporting true spares the holder's names. The
	// holder value is the handle's process ID — identically for NewArena
	// and OpenArena — so kill(pid, 0)-style oracles work unchanged across
	// arena kinds. (Only on exotic platforms whose PIDs overflow the 24-bit
	// stamp holder field is the PID folded into range; see shm.MaxHolder.)
	// The mmap-backed arena defaults to probing the holder's process with
	// kill(pid, 0); in-process arenas default to nil (heartbeats alone).
	Alive func(holder uint64) bool
}

func (c *LeaseConfig) validate() error {
	if c.TTL <= 0 {
		return fmt.Errorf("shmrename: LeaseConfig.TTL must be > 0, got %v", c.TTL)
	}
	if c.Reaper < 0 {
		return fmt.Errorf("shmrename: LeaseConfig.Reaper must be >= 0, got %v", c.Reaper)
	}
	return nil
}

// ttlEpochs converts the TTL to whole lease epochs (milliseconds), at
// least one.
func (c *LeaseConfig) ttlEpochs() uint64 {
	e := uint64(c.TTL / time.Millisecond)
	if e == 0 {
		e = 1
	}
	return e
}

// Arena full/validation errors.
var (
	// ErrArenaFull reports that Acquire found no free slot across several
	// full passes. It signals over-subscription or heavy churn contention
	// (a concurrent stream of acquires and releases can race every scan
	// even below capacity, though that is vanishingly unlikely across the
	// retry passes); treat it as backpressure and retry after backing off.
	// Returned errors wrap it together with the arena's capacity (and, for
	// batch acquires, the requested batch size).
	ErrArenaFull = errors.New("shmrename: arena full")
	// ErrNotHeld reports a release of a name that is not currently held.
	// Returned errors wrap it together with the offending name, identically
	// on every backend.
	ErrNotHeld = errors.New("shmrename: name not held")
	// ErrClosed reports an operation on a closed arena. Acquire, AcquireN,
	// Release, and ReleaseAll return an error wrapping it after Close,
	// identically on every backend; Heartbeat and SweepStale report zero
	// work instead (their contracts are counts, not errors).
	ErrClosed = errors.New("shmrename: arena closed")
	// ErrCorrupted reports that the arena detected state damage it cannot
	// vouch for — a lease-cache conservation violation surfaced through
	// ArenaConfig.Integrity. The error is sticky: once raised, every later
	// Acquire/AcquireN/Release/ReleaseAll returns it (wrapping the original
	// violation description), and Health reports Failed. Rebuild the arena.
	ErrCorrupted = errors.New("shmrename: arena corrupted")
)

// acquirePasses bounds native Acquire passes before ErrArenaFull: each
// failed pass scanned the full backstop, so by then the arena was observed
// at capacity several times over.
const acquirePasses = 8

// Arena is a long-lived renaming arena: names are acquired, released, and
// reacquired indefinitely, and at every instant the live holders' names are
// pairwise distinct. All methods are safe for concurrent use from multiple
// goroutines. Construct with NewArena.
//
// This is the native-mode surface (real goroutines on sync/atomic); the
// deterministic adversarial simulator drives the same backends through
// internal/longlived and the E15 churn experiment.
type Arena struct {
	impl   longlived.Arena
	seed   uint64
	nextID atomic.Int64
	procs  sync.Pool
	// cache is the word-block lease cache layer when
	// ArenaConfig.LeaseBlocks is set (impl aliases it then); nil otherwise.
	cache *leasecache.Cache
	// Crash-recovery state; all nil/zero when ArenaConfig.Lease is nil.
	rec        longlived.Recoverable
	holder     uint64
	epochs     shm.EpochSource
	sweeper    *recovery.Sweeper
	stopReaper func()
	closer     func() error // extra teardown (mmap-backed arenas)
	closed     atomic.Bool
	// Self-healing state; all nil when ArenaConfig.Integrity is nil.
	scrubber  *integrity.Scrubber
	stopScrub func()
	// corrupted latches the first conservation-violation description: the
	// sticky ErrCorrupted source checked by every mutating operation.
	corrupted atomic.Pointer[string]
	// Cumulative operation statistics; see Stats. Acquire/release counts
	// are striped so the counter update cannot become the shared-memory
	// operation the lease-cache fast path just eliminated.
	acquires     striped
	acquireSteps striped
	releases     striped
	heartbeats   atomic.Int64
}

// statStripes is the stripe count of the operation counters (power of 2).
const statStripes = 8

// striped is a cache-line-padded striped counter: writers pick a lane by
// their proc ID, so concurrent hot-path increments land on disjoint cache
// lines instead of serializing on one shared word; readers sum the lanes.
type striped struct {
	lanes [statStripes]struct {
		v atomic.Int64
		_ [56]byte
	}
}

// add bumps the lane's counter.
func (s *striped) add(lane int, d int64) { s.lanes[lane&(statStripes-1)].v.Add(d) }

// total sums the lanes (a racy snapshot, like any concurrent counter read).
func (s *striped) total() int64 {
	var t int64
	for i := range s.lanes {
		t += s.lanes[i].v.Load()
	}
	return t
}

// ArenaStats is a snapshot of an arena's cumulative operation counters.
// Steps are shared-memory accesses in the sense of the paper's cost model,
// so AcquireSteps/Acquires is the machine-independent structural cost of
// finding a free slot — the metric the BENCH_2/BENCH_3/BENCH_4 regression
// gates track.
type ArenaStats struct {
	// Acquires counts successfully acquired names (batch acquires count
	// every name of the batch).
	Acquires int64
	// AcquireSteps totals the shared-memory steps spent inside successful
	// Acquire and AcquireN calls.
	AcquireSteps int64
	// Releases counts successfully released names.
	Releases int64
	// Heartbeats counts Heartbeat calls. Always 0 with leases off.
	Heartbeats int64
	// Sweeps counts recovery sweep passes (SweepStale calls, background
	// reaper ticks, and the OpenArena on-open sweep). Always 0 with leases
	// off.
	Sweeps int64
	// Reclaimed counts names returned to the pool by recovery sweeps —
	// leases of crashed holders, adopted orphan bits, and resumed
	// half-done reclaims. Always 0 with leases off.
	Reclaimed int64
	// CacheRefills counts word-block leases the cache layer took from the
	// backend — each one word-granular batch claim that funds up to
	// LeaseBlocks local acquires. Always 0 with LeaseBlocks off.
	CacheRefills int64
	// CacheSpills counts whole blocks the cache returned to the backend
	// under release-side pressure (a worker cache at its cap). Always 0
	// with LeaseBlocks off.
	CacheSpills int64
	// CacheSteals counts names acquired from another worker's cache when
	// the backend had none free — the imbalance valve. Always 0 with
	// LeaseBlocks off.
	CacheSteals int64
	// CapacityNow is the capacity resident right now: the summed sizes of
	// an elastic arena's active levels, tracking live contention between
	// ElasticConfig.MinCapacity and the growth ceiling. Fixed-capacity
	// backends report Capacity — the two new fields are zero-delta there.
	CapacityNow int
	// PeakCapacity is the largest CapacityNow the arena has reached;
	// Capacity for fixed backends.
	PeakCapacity int
	// ResidentBytes is the resident bitmap, saturation-hint, and
	// lease-stamp storage of backends that report it (level-ladder
	// arenas, fixed and elastic) — the memory-proportionality proxy
	// BENCH_6.json records. 0 for backends without a footprint report.
	ResidentBytes int64
	// ScrubPasses counts completed integrity scrub passes (Scrub calls and
	// background ticks). Always 0 with Integrity off.
	ScrubPasses int64
	// Repaired counts names the scrubber repaired across all passes:
	// adopted orphan bits, dropped residual stamps, purged phantom cache
	// entries, re-seized quarantine bits. Always 0 with Integrity off.
	Repaired int64
	// Quarantined counts names the scrubber withdrew from circulation
	// across all passes. Always 0 with Integrity off.
	Quarantined int64
}

// Stats returns a snapshot of the arena's cumulative operation counters.
func (a *Arena) Stats() ArenaStats {
	st := ArenaStats{
		Acquires:     a.acquires.total(),
		AcquireSteps: a.acquireSteps.total(),
		Releases:     a.releases.total(),
		Heartbeats:   a.heartbeats.Load(),
	}
	if a.cache != nil {
		st.CacheRefills, st.CacheSpills, st.CacheSteals = a.cache.Stats()
	}
	st.CapacityNow = a.impl.Capacity()
	st.PeakCapacity = st.CapacityNow
	if el, ok := a.impl.(registry.Elastic); ok {
		st.CapacityNow = el.CapacityNow()
		st.PeakCapacity = el.PeakCapacity()
	}
	if fp, ok := a.impl.(registry.Footprint); ok {
		st.ResidentBytes = fp.ResidentBytes()
	}
	if a.sweeper != nil {
		c := a.sweeper.Counters()
		st.Sweeps = int64(c.Sweeps)
		st.Reclaimed = int64(c.Reclaimed)
	}
	if a.scrubber != nil {
		c := a.scrubber.Counters()
		st.ScrubPasses = int64(c.Passes)
		st.Repaired = int64(c.Repaired)
		st.Quarantined = int64(c.Quarantined)
	}
	return st
}

// NewArena builds a long-lived renaming arena.
func NewArena(cfg ArenaConfig) (*Arena, error) {
	if cfg.Capacity < 1 {
		return nil, errors.New("shmrename: ArenaConfig.Capacity must be >= 1")
	}
	// Operation indices are int32 on the hot path; the level ladder's name
	// bound stays below 4x capacity.
	if cfg.Capacity >= 1<<29 {
		return nil, fmt.Errorf("shmrename: ArenaConfig.Capacity must be < 2^29, got %d", cfg.Capacity)
	}
	if cfg.Probes < 0 {
		return nil, fmt.Errorf("shmrename: ArenaConfig.Probes must be >= 0, got %d", cfg.Probes)
	}
	var wordScan bool
	switch cfg.Probe {
	case ProbeAuto, ProbeWord:
		wordScan = true
	case ProbeBit:
	default:
		return nil, fmt.Errorf("shmrename: unknown ArenaConfig.Probe mode %q (want %q or %q)",
			cfg.Probe, ProbeWord, ProbeBit)
	}
	if cfg.LeaseBlocks < 0 || cfg.LeaseBlocks > 64 {
		return nil, fmt.Errorf("shmrename: ArenaConfig.LeaseBlocks must lie in [0, 64], got %d", cfg.LeaseBlocks)
	}
	if cfg.LeaseBlocks > 0 && !wordScan {
		return nil, fmt.Errorf("shmrename: ArenaConfig.LeaseBlocks leases whole bitmap words and requires the word-granular claim engine; it cannot combine with Probe %q", ProbeBit)
	}
	if cfg.Backend != ArenaBackendSharded {
		if cfg.Shards != 0 {
			return nil, fmt.Errorf("shmrename: ArenaConfig.Shards is only meaningful with the %q backend, got Shards=%d with backend %q",
				ArenaBackendSharded, cfg.Shards, cfg.Backend)
		}
		if cfg.StealProbes != 0 {
			return nil, fmt.Errorf("shmrename: ArenaConfig.StealProbes is only meaningful with the %q backend, got StealProbes=%d with backend %q",
				ArenaBackendSharded, cfg.StealProbes, cfg.Backend)
		}
	}
	if cfg.Integrity != nil {
		if err := cfg.Integrity.validate(); err != nil {
			return nil, err
		}
		if cfg.Lease == nil {
			return nil, errors.New("shmrename: ArenaConfig.Integrity requires ArenaConfig.Lease (the scrubber verifies the lease stamps)")
		}
	}
	// The elastic policy resolves its growth ceiling up front: the ladder
	// shape is provisioned for buildCap, residency starts near MinCapacity.
	buildCap := cfg.Capacity
	if cfg.Elastic != nil {
		var err error
		if buildCap, err = cfg.Elastic.validate(cfg.Capacity); err != nil {
			return nil, err
		}
	}
	// The lease layer stamps every claim with this handle's holder
	// identity (the process ID), so Heartbeat renews all of the handle's
	// names at once and the handle — not individual goroutines — is the
	// recovery unit.
	var lease *longlived.LeaseOpts
	var holder uint64
	if cfg.Lease != nil {
		if err := cfg.Lease.validate(); err != nil {
			return nil, err
		}
		// The raw PID, so a LeaseConfig.Alive oracle written as kill(pid, 0)
		// probes the right process for in-process and mmap-backed arenas
		// alike. PIDs fit the 24-bit stamp holder field on every mainstream
		// kernel (Linux caps pid_max at 2^22); an out-of-range PID is folded
		// in-range as a last resort — Alive oracles cannot rely on it there.
		holder = uint64(os.Getpid())
		if holder < 1 || holder > shm.MaxHolder {
			holder = holder%shm.MaxHolder + 1
		}
		lease = &longlived.LeaseOpts{
			Epochs: shm.WallEpochs{},
			Holder: func(*shm.Proc) uint64 { return holder },
		}
	}
	var impl longlived.Arena
	switch cfg.Backend {
	case "", ArenaLevel:
		if cfg.Elastic != nil {
			impl = longlived.NewElastic(buildCap, longlived.ElasticConfig{
				MinCapacity: cfg.Elastic.MinCapacity,
				GrowAt:      cfg.Elastic.GrowAt,
				ShrinkAt:    cfg.Elastic.ShrinkAt,
				Probes:      cfg.Probes,
				MaxPasses:   acquirePasses,
				WordScan:    wordScan,
				Padded:      true,
				Lease:       lease,
			})
			break
		}
		impl = longlived.NewLevel(cfg.Capacity, longlived.LevelConfig{
			Probes:    cfg.Probes,
			MaxPasses: acquirePasses,
			WordScan:  wordScan,
			Padded:    true,
			Lease:     lease,
		})
	case ArenaElastic:
		e := cfg.Elastic
		if e == nil {
			e = &ElasticConfig{}
		}
		impl = longlived.NewElastic(buildCap, longlived.ElasticConfig{
			MinCapacity: e.MinCapacity,
			GrowAt:      e.GrowAt,
			ShrinkAt:    e.ShrinkAt,
			Probes:      cfg.Probes,
			MaxPasses:   acquirePasses,
			WordScan:    wordScan,
			Padded:      true,
			Lease:       lease,
		})
	case ArenaTau:
		if cfg.Elastic != nil {
			return nil, fmt.Errorf("shmrename: ArenaConfig.Elastic is not supported by the %q backend (its counting devices are fixed-shape); use %q or %q",
				ArenaTau, ArenaLevel, ArenaBackendSharded)
		}
		impl = longlived.NewTau(cfg.Capacity, longlived.TauConfig{
			Probes:      cfg.Probes,
			MaxPasses:   acquirePasses,
			WordScan:    wordScan,
			SelfClocked: true,
			Padded:      true,
			Lease:       lease,
		})
	case ArenaBackendSharded:
		shards := cfg.Shards
		if shards < 0 || shards > cfg.Capacity {
			return nil, fmt.Errorf("shmrename: ArenaConfig.Shards must lie in [1, Capacity=%d], got %d", cfg.Capacity, shards)
		}
		if shards == 0 {
			shards = runtime.GOMAXPROCS(0)
			if shards > cfg.Capacity {
				shards = cfg.Capacity
			}
		}
		if cfg.StealProbes < 0 {
			return nil, fmt.Errorf("shmrename: ArenaConfig.StealProbes must be >= 0, got %d", cfg.StealProbes)
		}
		scfg := sharded.Config{
			Shards:      shards,
			StealProbes: cfg.StealProbes,
			MaxPasses:   acquirePasses,
			Probes:      cfg.Probes,
			WordScan:    wordScan,
			Padded:      true,
			Lease:       lease,
		}
		if cfg.Elastic != nil {
			scfg.Elastic = cfg.Elastic.params()
		}
		impl = sharded.New(buildCap, scfg)
	default:
		// Any other name resolves through the backend registry, so a backend
		// added to internal/registry/all is immediately constructible here.
		// Registry backends take only the common construction surface: the
		// named-backend tuning knobs cannot be forwarded and are config
		// errors rather than silent no-ops.
		b, ok := registry.Lookup(string(cfg.Backend))
		if !ok {
			return nil, fmt.Errorf("shmrename: unknown arena backend %q", cfg.Backend)
		}
		if b.Caps.External {
			return nil, fmt.Errorf("shmrename: backend %q is backed by external state; open it with OpenArena", cfg.Backend)
		}
		if b.Caps.DenseProcs {
			return nil, fmt.Errorf("shmrename: backend %q requires densely numbered process contexts (the simulated-harness model); it is not constructible behind the pooled-proc NewArena surface", cfg.Backend)
		}
		if cfg.Probes != 0 || cfg.Probe != ProbeAuto || cfg.LeaseBlocks != 0 {
			return nil, fmt.Errorf("shmrename: ArenaConfig.Probes/Probe/LeaseBlocks do not apply to registry backend %q", cfg.Backend)
		}
		if cfg.Elastic != nil && !b.Caps.Elastic {
			return nil, fmt.Errorf("shmrename: registry backend %q does not declare the Elastic capability; ArenaConfig.Elastic does not apply", cfg.Backend)
		}
		rcfg := registry.Config{Capacity: buildCap, MaxPasses: acquirePasses}
		if cfg.Elastic != nil {
			rcfg.Elastic = cfg.Elastic.params()
		}
		if cfg.Lease != nil {
			rcfg.Epochs = shm.WallEpochs{}
			rcfg.Holder = holder
		}
		impl = b.New(rcfg)
	}
	var cache *leasecache.Cache
	if cfg.LeaseBlocks > 0 {
		cache = leasecache.New(impl, leasecache.Config{Block: cfg.LeaseBlocks})
		impl = cache
	}
	a := &Arena{impl: impl, cache: cache, seed: cfg.Seed}
	if cfg.Lease != nil {
		rec, ok := impl.(longlived.Recoverable)
		if !ok {
			return nil, fmt.Errorf("shmrename: backend %q does not support leases", cfg.Backend)
		}
		a.initLease(rec, holder, shm.WallEpochs{},
			recovery.NewSweeper(rec, recovery.Config{
				TTL:    cfg.Lease.ttlEpochs(),
				Epochs: shm.WallEpochs{},
				Alive:  cfg.Lease.Alive,
			}), cfg.Lease.Reaper)
		if cfg.Integrity != nil {
			a.initIntegrity(cfg.Integrity, cfg.Lease.ttlEpochs(), shm.WallEpochs{})
		}
	}
	return a, nil
}

// initIntegrity wires the self-healing layer over the (already wired)
// recovery state: the scrubber, the cache cross-checks, the cache's
// corruption handler (panics become the sticky ErrCorrupted), and the
// background scrub loop when requested.
func (a *Arena) initIntegrity(cfg *IntegrityConfig, ttl uint64, ep shm.EpochSource) {
	icfg := integrity.Config{
		Epochs:     ep,
		TTL:        ttl,
		Quarantine: cfg.Quarantine,
	}
	if a.cache != nil {
		icfg.Parked = a.cache.Parked
		icfg.Purge = a.cache.PurgeParked
		a.cache.SetOnCorruption(func(msg string) {
			m := msg
			a.corrupted.CompareAndSwap(nil, &m)
		})
	}
	a.scrubber = integrity.NewScrubber(a.rec, icfg)
	if cfg.ScrubInterval > 0 {
		a.stopScrub = a.scrubber.Run(a.proc(), cfg.ScrubInterval)
	}
}

// initLease wires the crash-recovery state and starts the background
// reaper when requested.
func (a *Arena) initLease(rec longlived.Recoverable, holder uint64, ep shm.EpochSource, sw *recovery.Sweeper, reaper time.Duration) {
	a.rec = rec
	a.holder = holder
	a.epochs = ep
	a.sweeper = sw
	if reaper > 0 {
		a.stopReaper = sw.Reaper(a.proc(), reaper)
	}
}

// proc hands out a pooled ungated process context; each fresh context gets
// its own deterministic randomness stream.
func (a *Arena) proc() *shm.Proc {
	if p, ok := a.procs.Get().(*shm.Proc); ok {
		return p
	}
	id := int(a.nextID.Add(1) - 1)
	return shm.NewProc(id, prng.NewStream(a.seed, id), nil, 0)
}

// Capacity returns the guaranteed concurrent-holder count. On an arena
// with the integrity layer enabled, quarantined names are subtracted: a
// Degraded arena advertises the capacity it can actually serve.
func (a *Arena) Capacity() int {
	c := a.impl.Capacity()
	if a.scrubber != nil {
		if c -= a.scrubber.QuarantinedNames(); c < 0 {
			c = 0
		}
	}
	return c
}

// NameBound bounds issued names: they lie in [0, NameBound).
func (a *Arena) NameBound() int { return a.impl.NameBound() }

// Held returns the number of currently held names (a snapshot).
func (a *Arena) Held() int { return a.impl.Held() }

// Backend returns the backend's descriptive label.
func (a *Arena) Backend() string { return a.impl.Label() }

// Acquire claims a name that is unique among the arena's current holders.
// It returns an error wrapping ErrArenaFull (and reporting the capacity)
// after repeatedly finding no free slot — the steady-state signal of more
// than Capacity concurrent holders, though sustained churn racing every
// retry pass can produce it early.
//
// On any error the returned name is -1 — outside the valid name range
// [0, NameBound), so code that drops the error can never mistake the
// sentinel for name 0, which a healthy arena hands out constantly.
func (a *Arena) Acquire() (int, error) {
	if a.closed.Load() {
		return -1, fmt.Errorf("%w: Acquire", ErrClosed)
	}
	if err := a.corruptErr(); err != nil {
		return -1, err
	}
	p := a.proc()
	lane := p.ID()
	before := p.Steps()
	name := a.impl.Acquire(p)
	steps := p.Steps() - before
	a.procs.Put(p)
	if name < 0 {
		return -1, fmt.Errorf("%w: capacity %d", ErrArenaFull, a.impl.Capacity())
	}
	a.acquires.add(lane, 1)
	a.acquireSteps.add(lane, steps)
	return name, nil
}

// AcquireN claims a batch of k names, each unique among the arena's
// current holders, amortizing per-call overhead: word-granular backends
// serve up to 64 names per shared-memory access, and the sharded backend
// routes the whole batch through one home/steal/sweep pass. The batch is
// all-or-nothing — if the arena cannot serve all k names, the partial
// batch is released again and an error wrapping ErrArenaFull reports the
// capacity and the requested size. k must lie in [1, Capacity]; larger
// batches could never succeed and are rejected outright.
func (a *Arena) AcquireN(k int) ([]int, error) {
	if a.closed.Load() {
		return nil, fmt.Errorf("%w: AcquireN", ErrClosed)
	}
	if err := a.corruptErr(); err != nil {
		return nil, err
	}
	if k < 1 || k > a.impl.Capacity() {
		return nil, fmt.Errorf("shmrename: AcquireN batch size %d must lie in [1, Capacity=%d]",
			k, a.impl.Capacity())
	}
	p := a.proc()
	lane := p.ID()
	before := p.Steps()
	names := a.impl.AcquireN(p, k, make([]int, 0, k))
	steps := p.Steps() - before
	if len(names) < k {
		a.impl.ReleaseN(p, names)
		a.procs.Put(p)
		return nil, fmt.Errorf("%w: capacity %d, batch of %d unserved", ErrArenaFull, a.impl.Capacity(), k)
	}
	a.procs.Put(p)
	a.acquires.add(lane, int64(k))
	a.acquireSteps.add(lane, steps)
	return names, nil
}

// Release returns an acquired name to the pool. Only the holder may release
// a name; releasing a name that is not held returns an error wrapping
// ErrNotHeld (a best-effort guard — the arena cannot tell holders apart).
// An out-of-range name is by definition not held, so it reports ErrNotHeld
// too, with the offending name and the valid range in the error text.
func (a *Arena) Release(name int) error {
	if a.closed.Load() {
		return fmt.Errorf("%w: Release", ErrClosed)
	}
	if err := a.corruptErr(); err != nil {
		return err
	}
	if err := a.releasable(name); err != nil {
		return err
	}
	p := a.proc()
	lane := p.ID()
	a.impl.Release(p, name)
	a.procs.Put(p)
	a.releases.add(lane, 1)
	return nil
}

// releasable applies the release validation shared by Release and
// ReleaseAll: out-of-range and not-held names both report ErrNotHeld,
// wrapped with the offending name, identically on every backend.
func (a *Arena) releasable(name int) error {
	if name < 0 || name >= a.impl.NameBound() {
		return fmt.Errorf("%w: name %d outside [0, %d)", ErrNotHeld, name, a.impl.NameBound())
	}
	if !a.impl.IsHeld(name) {
		return fmt.Errorf("%w: name %d", ErrNotHeld, name)
	}
	return nil
}

// ReleaseAll returns a batch of acquired names to the pool, coalescing
// names that share a bitmap word into single clearing steps (level-backed
// arenas) and grouping by shard (sharded arenas). Invalid entries do not
// abort the batch: every valid held name is released, and the errors for
// the others — each wrapping ErrNotHeld with the offending name and its
// position in the batch (`names[i]`) — are joined into the returned
// error, so a caller can tell which entry of a mixed batch failed even
// when the same name appears at several positions. A name repeated within
// the batch is released once; the repeats report ErrNotHeld, exactly as
// sequential Release calls would. The slice is not retained or modified.
func (a *Arena) ReleaseAll(names []int) error {
	if a.closed.Load() {
		return fmt.Errorf("%w: ReleaseAll", ErrClosed)
	}
	if err := a.corruptErr(); err != nil {
		return err
	}
	var errs []error
	valid := make([]int, 0, len(names))
	// Duplicate detection scans the accepted prefix for typical batch
	// sizes (≤64 names fit a word claim) — no extra allocation on the hot
	// path — and switches to a map only for oversized batches.
	var seen map[int]bool
	if len(names) > 64 {
		seen = make(map[int]bool, len(names))
	}
	for i, n := range names {
		if err := a.releasable(n); err != nil {
			errs = append(errs, fmt.Errorf("names[%d]: %w", i, err))
			continue
		}
		dup := false
		if seen != nil {
			dup = seen[n]
			seen[n] = true
		} else {
			dup = slices.Contains(valid, n)
		}
		if dup {
			errs = append(errs, fmt.Errorf("names[%d]: %w: name %d repeated in batch", i, ErrNotHeld, n))
			continue
		}
		valid = append(valid, n)
	}
	if len(valid) > 0 {
		p := a.proc()
		lane := p.ID()
		a.impl.ReleaseN(p, valid)
		a.procs.Put(p)
		a.releases.add(lane, int64(len(valid)))
	}
	return errors.Join(errs...)
}

// Leased reports whether the crash-recovery lease layer is enabled.
func (a *Arena) Leased() bool { return a.rec != nil }

// Heartbeat renews the lease of every name this handle currently holds,
// returning the number of renewed leases. A lease-enabled arena's holder
// must call it more often than once per LeaseConfig.TTL, or a sweep may
// presume the handle crashed (unless the Alive oracle vouches for it) and
// reclaim its names. A name whose lease was already reclaimed is not
// renewed — that name is lost to this holder. With leases off, Heartbeat
// does nothing and returns 0.
func (a *Arena) Heartbeat() int {
	if a.rec == nil || a.closed.Load() {
		return 0
	}
	p := a.proc()
	renewed := longlived.HeartbeatHolder(a.rec, p, a.holder, a.epochs.Now())
	a.procs.Put(p)
	a.heartbeats.Add(1)
	return renewed
}

// SweepStale runs one recovery sweep: every lease that outlived its TTL
// without renewal — and whose holder the Alive oracle (if any) does not
// vouch for — is reclaimed, returning those names to the pool. It returns
// the number of names reclaimed by this pass. Sweeping is safe at any
// time, from any goroutine, concurrently with churn and with the
// background reaper: a live holder's racing heartbeat always wins over
// the reclaim. With leases off, SweepStale does nothing and returns 0.
func (a *Arena) SweepStale() int {
	if a.sweeper == nil || a.closed.Load() {
		return 0
	}
	p := a.proc()
	res := a.sweeper.Sweep(p)
	a.procs.Put(p)
	return res.Reclaimed + res.Resumed
}

// corruptErr returns the sticky corruption error, nil while healthy.
func (a *Arena) corruptErr() error {
	if msg := a.corrupted.Load(); msg != nil {
		return fmt.Errorf("%w: %s", ErrCorrupted, *msg)
	}
	return nil
}

// Health reports the arena's integrity state: Failed when damage was
// detected but not contained (a lease-cache conservation violation — see
// ErrCorrupted — or an integrity violation the scrubber could not
// quarantine), Degraded when damage was contained by quarantining names
// (the arena is safe but serves less than its configured capacity), and
// Healthy otherwise. Arenas without ArenaConfig.Integrity always report
// Healthy. The verdict reflects the most recent scrub pass; run Scrub (or
// configure IntegrityConfig.ScrubInterval) to keep it current.
func (a *Arena) Health() Health {
	if a.corrupted.Load() != nil {
		return Failed
	}
	if a.scrubber == nil {
		return Healthy
	}
	if a.scrubber.Unrepaired() > 0 {
		return Failed
	}
	if a.scrubber.QuarantinedNames() > 0 {
		return Degraded
	}
	return Healthy
}

// ScrubResult reports what one integrity scrub pass found and did; see
// Arena.Scrub.
type ScrubResult struct {
	// Scanned is the number of names examined.
	Scanned int
	// Repaired counts repaired damage: adopted orphan bits, dropped
	// residual stamps, purged phantom cache entries, re-seized quarantine
	// bits.
	Repaired int
	// Quarantined counts names newly withdrawn from circulation this pass.
	Quarantined int
	// Unrepaired counts violations detected but not contained; the arena's
	// Health is Failed while any stand.
	Unrepaired int
}

// Scrub runs one integrity pass over the arena: every name is checked
// against the conservation invariant (free, parked, or granted — never two
// at once), repairable damage is repaired, and — with
// IntegrityConfig.Quarantine — irreparably damaged bitmap words are
// withdrawn from circulation. Safe at any time, from any goroutine,
// concurrently with churn, the reaper, and other scrubs. With Integrity
// off (or after Close) it does nothing and returns a zero result.
func (a *Arena) Scrub() ScrubResult {
	if a.scrubber == nil || a.closed.Load() {
		return ScrubResult{}
	}
	p := a.proc()
	res := a.scrubber.Scrub(p)
	a.procs.Put(p)
	return ScrubResult(res)
}

// Close releases the arena's background resources: it flushes any
// word-block lease caches (parked names return to the pool), stops the
// lease reaper (waiting out an in-flight sweep) and, for mmap-backed arenas,
// detaches from the namespace file — held names stay claimed in the file
// and are recovered by surviving processes' sweeps once their leases
// lapse. Close is idempotent; an arena without background resources
// closes trivially. After Close, Acquire, AcquireN, Release, and
// ReleaseAll return an error wrapping ErrClosed, and Heartbeat and
// SweepStale report zero work.
func (a *Arena) Close() error {
	if !a.closed.CompareAndSwap(false, true) {
		return nil
	}
	if a.cache != nil {
		// Return every parked name to the backend so nothing dangles as a
		// claimed-but-unheld lease after an orderly shutdown.
		p := a.proc()
		a.cache.Flush(p)
		a.procs.Put(p)
	}
	if a.stopReaper != nil {
		a.stopReaper()
	}
	if a.stopScrub != nil {
		a.stopScrub()
	}
	if a.closer != nil {
		return a.closer()
	}
	return nil
}
