package shmrename

import (
	"errors"
	"fmt"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"

	"shmrename/internal/longlived"
	"shmrename/internal/prng"
	"shmrename/internal/sharded"
	"shmrename/internal/shm"
)

// ArenaBackend selects a long-lived arena implementation.
type ArenaBackend string

// Available arena backends.
const (
	// ArenaLevel is the LevelArray-style arena: levels of geometrically
	// growing packed TAS bitmaps, random probes falling through to a
	// deterministic backstop scan. Issued names track the instantaneous
	// occupancy. The default.
	ArenaLevel ArenaBackend = "level-array"
	// ArenaTau is the long-lived adaptation of the paper's τ-register
	// algorithm: counting devices front blocks of names, and releases
	// return both the name and the device bit.
	ArenaTau ArenaBackend = "tau-longlived"
	// ArenaBackendSharded is the striped multicore frontend: the name
	// space is partitioned across ArenaConfig.Shards level-array
	// sub-arenas, each goroutine keeps a cached home-shard affinity, and a
	// full home shard overflows to ArenaConfig.StealProbes neighbor shards
	// before a deterministic full sweep. Issued names stay within the
	// shards × per-shard-bound tightness envelope (see NameBound).
	ArenaBackendSharded ArenaBackend = "sharded"
)

// ProbeMode selects the granularity at which an arena searches for free
// slots.
type ProbeMode string

// Probe modes.
const (
	// ProbeAuto selects the default for the execution surface: the public
	// arena runs natively, so it gets the word-granular engine (ProbeWord).
	ProbeAuto ProbeMode = ""
	// ProbeWord is the word-granular claim engine: probes snapshot a whole
	// 64-name bitmap word and claim a free bit in one CAS, fallback scans
	// walk words instead of names, and batch acquires claim up to 64 names
	// per shared-memory access. The default.
	ProbeWord ProbeMode = "word"
	// ProbeBit is the paper's per-bit probe path: every probe is a single
	// TAS on one name. It matches the deterministic simulator's golden
	// fingerprints and costs one shared-memory access per examined name —
	// choose it to reproduce the paper's cost model, not for throughput.
	ProbeBit ProbeMode = "bit"
)

// ArenaConfig parameterizes a long-lived renaming arena.
type ArenaConfig struct {
	// Capacity is the number of concurrent holders the arena guarantees
	// to serve (required, >= 1). More may be admitted on a best-effort
	// basis; see Arena.Acquire.
	Capacity int
	// Backend defaults to ArenaLevel.
	Backend ArenaBackend
	// Probes tunes the per-level random probe count (ArenaLevel) or the
	// random device-attempt count (ArenaTau). 0 selects the default.
	Probes int
	// Shards is the stripe count of the sharded backend: the arena is
	// partitioned into Shards independent sub-arenas so concurrent
	// Acquire/Release traffic scales with cores. Only meaningful with
	// ArenaBackendSharded (setting it with another backend is a config
	// error). 0 selects GOMAXPROCS clamped to [1, Capacity]; explicit
	// values must lie in [1, Capacity].
	Shards int
	// StealProbes bounds the work-stealing probes of the sharded backend:
	// how many randomly chosen neighbor shards an acquire tries after its
	// home shard reports full, before falling back to a full sweep. Only
	// meaningful with ArenaBackendSharded. 0 selects the default (2).
	StealProbes int
	// Probe selects the slot-search granularity: ProbeWord (the default)
	// or ProbeBit. See the ProbeMode constants.
	Probe ProbeMode
	// Seed drives client-side randomness (probe targets).
	Seed uint64
}

// Arena full/validation errors.
var (
	// ErrArenaFull reports that Acquire found no free slot across several
	// full passes. It signals over-subscription or heavy churn contention
	// (a concurrent stream of acquires and releases can race every scan
	// even below capacity, though that is vanishingly unlikely across the
	// retry passes); treat it as backpressure and retry after backing off.
	// Returned errors wrap it together with the arena's capacity (and, for
	// batch acquires, the requested batch size).
	ErrArenaFull = errors.New("shmrename: arena full")
	// ErrNotHeld reports a release of a name that is not currently held.
	// Returned errors wrap it together with the offending name, identically
	// on every backend.
	ErrNotHeld = errors.New("shmrename: name not held")
)

// acquirePasses bounds native Acquire passes before ErrArenaFull: each
// failed pass scanned the full backstop, so by then the arena was observed
// at capacity several times over.
const acquirePasses = 8

// Arena is a long-lived renaming arena: names are acquired, released, and
// reacquired indefinitely, and at every instant the live holders' names are
// pairwise distinct. All methods are safe for concurrent use from multiple
// goroutines. Construct with NewArena.
//
// This is the native-mode surface (real goroutines on sync/atomic); the
// deterministic adversarial simulator drives the same backends through
// internal/longlived and the E15 churn experiment.
type Arena struct {
	impl   longlived.Arena
	seed   uint64
	nextID atomic.Int64
	procs  sync.Pool
	// Cumulative operation statistics; see Stats.
	acquires     atomic.Int64
	acquireSteps atomic.Int64
	releases     atomic.Int64
}

// ArenaStats is a snapshot of an arena's cumulative operation counters.
// Steps are shared-memory accesses in the sense of the paper's cost model,
// so AcquireSteps/Acquires is the machine-independent structural cost of
// finding a free slot — the metric the BENCH_2/BENCH_3/BENCH_4 regression
// gates track.
type ArenaStats struct {
	// Acquires counts successfully acquired names (batch acquires count
	// every name of the batch).
	Acquires int64
	// AcquireSteps totals the shared-memory steps spent inside successful
	// Acquire and AcquireN calls.
	AcquireSteps int64
	// Releases counts successfully released names.
	Releases int64
}

// Stats returns a snapshot of the arena's cumulative operation counters.
func (a *Arena) Stats() ArenaStats {
	return ArenaStats{
		Acquires:     a.acquires.Load(),
		AcquireSteps: a.acquireSteps.Load(),
		Releases:     a.releases.Load(),
	}
}

// NewArena builds a long-lived renaming arena.
func NewArena(cfg ArenaConfig) (*Arena, error) {
	if cfg.Capacity < 1 {
		return nil, errors.New("shmrename: ArenaConfig.Capacity must be >= 1")
	}
	// Operation indices are int32 on the hot path; the level ladder's name
	// bound stays below 4x capacity.
	if cfg.Capacity >= 1<<29 {
		return nil, fmt.Errorf("shmrename: ArenaConfig.Capacity must be < 2^29, got %d", cfg.Capacity)
	}
	if cfg.Probes < 0 {
		return nil, fmt.Errorf("shmrename: ArenaConfig.Probes must be >= 0, got %d", cfg.Probes)
	}
	var wordScan bool
	switch cfg.Probe {
	case ProbeAuto, ProbeWord:
		wordScan = true
	case ProbeBit:
	default:
		return nil, fmt.Errorf("shmrename: unknown ArenaConfig.Probe mode %q (want %q or %q)",
			cfg.Probe, ProbeWord, ProbeBit)
	}
	if cfg.Backend != ArenaBackendSharded {
		if cfg.Shards != 0 {
			return nil, fmt.Errorf("shmrename: ArenaConfig.Shards is only meaningful with the %q backend, got Shards=%d with backend %q",
				ArenaBackendSharded, cfg.Shards, cfg.Backend)
		}
		if cfg.StealProbes != 0 {
			return nil, fmt.Errorf("shmrename: ArenaConfig.StealProbes is only meaningful with the %q backend, got StealProbes=%d with backend %q",
				ArenaBackendSharded, cfg.StealProbes, cfg.Backend)
		}
	}
	var impl longlived.Arena
	switch cfg.Backend {
	case "", ArenaLevel:
		impl = longlived.NewLevel(cfg.Capacity, longlived.LevelConfig{
			Probes:    cfg.Probes,
			MaxPasses: acquirePasses,
			WordScan:  wordScan,
			Padded:    true,
		})
	case ArenaTau:
		impl = longlived.NewTau(cfg.Capacity, longlived.TauConfig{
			Probes:      cfg.Probes,
			MaxPasses:   acquirePasses,
			WordScan:    wordScan,
			SelfClocked: true,
			Padded:      true,
		})
	case ArenaBackendSharded:
		shards := cfg.Shards
		if shards < 0 || shards > cfg.Capacity {
			return nil, fmt.Errorf("shmrename: ArenaConfig.Shards must lie in [1, Capacity=%d], got %d", cfg.Capacity, shards)
		}
		if shards == 0 {
			shards = runtime.GOMAXPROCS(0)
			if shards > cfg.Capacity {
				shards = cfg.Capacity
			}
		}
		if cfg.StealProbes < 0 {
			return nil, fmt.Errorf("shmrename: ArenaConfig.StealProbes must be >= 0, got %d", cfg.StealProbes)
		}
		impl = sharded.New(cfg.Capacity, sharded.Config{
			Shards:      shards,
			StealProbes: cfg.StealProbes,
			MaxPasses:   acquirePasses,
			Probes:      cfg.Probes,
			WordScan:    wordScan,
			Padded:      true,
		})
	default:
		return nil, fmt.Errorf("shmrename: unknown arena backend %q", cfg.Backend)
	}
	return &Arena{impl: impl, seed: cfg.Seed}, nil
}

// proc hands out a pooled ungated process context; each fresh context gets
// its own deterministic randomness stream.
func (a *Arena) proc() *shm.Proc {
	if p, ok := a.procs.Get().(*shm.Proc); ok {
		return p
	}
	id := int(a.nextID.Add(1) - 1)
	return shm.NewProc(id, prng.NewStream(a.seed, id), nil, 0)
}

// Capacity returns the guaranteed concurrent-holder count.
func (a *Arena) Capacity() int { return a.impl.Capacity() }

// NameBound bounds issued names: they lie in [0, NameBound).
func (a *Arena) NameBound() int { return a.impl.NameBound() }

// Held returns the number of currently held names (a snapshot).
func (a *Arena) Held() int { return a.impl.Held() }

// Backend returns the backend's descriptive label.
func (a *Arena) Backend() string { return a.impl.Label() }

// Acquire claims a name that is unique among the arena's current holders.
// It returns an error wrapping ErrArenaFull (and reporting the capacity)
// after repeatedly finding no free slot — the steady-state signal of more
// than Capacity concurrent holders, though sustained churn racing every
// retry pass can produce it early.
func (a *Arena) Acquire() (int, error) {
	p := a.proc()
	before := p.Steps()
	name := a.impl.Acquire(p)
	steps := p.Steps() - before
	a.procs.Put(p)
	if name < 0 {
		return 0, fmt.Errorf("%w: capacity %d", ErrArenaFull, a.impl.Capacity())
	}
	a.acquires.Add(1)
	a.acquireSteps.Add(steps)
	return name, nil
}

// AcquireN claims a batch of k names, each unique among the arena's
// current holders, amortizing per-call overhead: word-granular backends
// serve up to 64 names per shared-memory access, and the sharded backend
// routes the whole batch through one home/steal/sweep pass. The batch is
// all-or-nothing — if the arena cannot serve all k names, the partial
// batch is released again and an error wrapping ErrArenaFull reports the
// capacity and the requested size. k must lie in [1, Capacity]; larger
// batches could never succeed and are rejected outright.
func (a *Arena) AcquireN(k int) ([]int, error) {
	if k < 1 || k > a.impl.Capacity() {
		return nil, fmt.Errorf("shmrename: AcquireN batch size %d must lie in [1, Capacity=%d]",
			k, a.impl.Capacity())
	}
	p := a.proc()
	before := p.Steps()
	names := a.impl.AcquireN(p, k, make([]int, 0, k))
	steps := p.Steps() - before
	if len(names) < k {
		a.impl.ReleaseN(p, names)
		a.procs.Put(p)
		return nil, fmt.Errorf("%w: capacity %d, batch of %d unserved", ErrArenaFull, a.impl.Capacity(), k)
	}
	a.procs.Put(p)
	a.acquires.Add(int64(k))
	a.acquireSteps.Add(steps)
	return names, nil
}

// Release returns an acquired name to the pool. Only the holder may release
// a name; releasing a name that is not held returns an error wrapping
// ErrNotHeld (a best-effort guard — the arena cannot tell holders apart).
// An out-of-range name is by definition not held, so it reports ErrNotHeld
// too, with the offending name and the valid range in the error text.
func (a *Arena) Release(name int) error {
	if err := a.releasable(name); err != nil {
		return err
	}
	p := a.proc()
	a.impl.Release(p, name)
	a.procs.Put(p)
	a.releases.Add(1)
	return nil
}

// releasable applies the release validation shared by Release and
// ReleaseAll: out-of-range and not-held names both report ErrNotHeld,
// wrapped with the offending name, identically on every backend.
func (a *Arena) releasable(name int) error {
	if name < 0 || name >= a.impl.NameBound() {
		return fmt.Errorf("%w: name %d outside [0, %d)", ErrNotHeld, name, a.impl.NameBound())
	}
	if !a.impl.IsHeld(name) {
		return fmt.Errorf("%w: name %d", ErrNotHeld, name)
	}
	return nil
}

// ReleaseAll returns a batch of acquired names to the pool, coalescing
// names that share a bitmap word into single clearing steps (level-backed
// arenas) and grouping by shard (sharded arenas). Invalid entries do not
// abort the batch: every valid held name is released, and the errors for
// the others — each wrapping ErrNotHeld with the offending name — are
// joined into the returned error. A name repeated within the batch is
// released once; the repeats report ErrNotHeld, exactly as sequential
// Release calls would. The slice is not retained or modified.
func (a *Arena) ReleaseAll(names []int) error {
	var errs []error
	valid := make([]int, 0, len(names))
	// Duplicate detection scans the accepted prefix for typical batch
	// sizes (≤64 names fit a word claim) — no extra allocation on the hot
	// path — and switches to a map only for oversized batches.
	var seen map[int]bool
	if len(names) > 64 {
		seen = make(map[int]bool, len(names))
	}
	for _, n := range names {
		if err := a.releasable(n); err != nil {
			errs = append(errs, err)
			continue
		}
		dup := false
		if seen != nil {
			dup = seen[n]
			seen[n] = true
		} else {
			dup = slices.Contains(valid, n)
		}
		if dup {
			errs = append(errs, fmt.Errorf("%w: name %d repeated in batch", ErrNotHeld, n))
			continue
		}
		valid = append(valid, n)
	}
	if len(valid) > 0 {
		p := a.proc()
		a.impl.ReleaseN(p, valid)
		a.procs.Put(p)
		a.releases.Add(int64(len(valid)))
	}
	return errors.Join(errs...)
}
