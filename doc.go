// Package shmrename is a library of randomized renaming algorithms for
// asynchronous shared-memory systems, reproducing "Randomized Renaming in
// Shared Memory Systems" (Berenbrink, Brinkmann, Elsässer, Friedetzky,
// Nagel; IPDPS 2015).
//
// Renaming assigns n processes distinct names from a name space of size m
// (tight: m = n; loose: m > n) using test-and-set operations, against an
// adaptive adversary that schedules steps and crashes processes. The
// paper's contributions, all implemented here:
//
//   - Tight renaming in O(log n) steps w.h.p. using τ-registers — special
//     hardware combining a block of test-and-set bits with a counting
//     device that admits at most τ winners (simulated cycle-accurately in
//     this library, §II.B-C of the paper).
//   - Loose renaming onto m = n + 2n/(log log n)^ℓ names in
//     O((log log n)^ℓ) steps w.h.p. (Lemma 6 / Corollary 7).
//   - Loose renaming onto m = n + 2n/(log n)^ℓ names in O((log log n)²)
//     steps w.h.p. (Lemma 8 / Corollary 9).
//
// Baselines from the literature (sorting-network renaming, uniform
// probing, deterministic linear scan, software test-and-set) are included
// for comparison, along with a deterministic adversarial scheduler, an
// experiment harness regenerating every claim (see ALGORITHMS.md §6), and
// wall-clock benchmarks.
//
// # Quick start
//
//	res, err := shmrename.Rename(shmrename.Config{
//		N:         1024,
//		Algorithm: shmrename.TightTau,
//		Seed:      42,
//	})
//	if err != nil { ... }
//	// res.Names[pid] is the distinct name process pid acquired.
//
// Set Config.Simulate to run under the deterministic adversarial
// simulator and choose a Schedule ("fifo", "random", "round-robin",
// "collider", "starve") and a CrashFraction; leave it false to run on
// real goroutines with sync/atomic test-and-set.
//
// # Long-lived renaming
//
// The paper's algorithms are one-shot: a name, once acquired, is held
// forever. NewArena provides the long-lived variant for churn workloads —
// sustained acquire/release traffic in which names return to the pool and
// are reacquired indefinitely:
//
//	arena, err := shmrename.NewArena(shmrename.ArenaConfig{Capacity: 256})
//	name, err := arena.Acquire() // unique among current holders
//	// ...
//	err = arena.Release(name)    // name becomes reacquirable
//
// Long-lived semantics: at every instant the names of live holders are
// pairwise distinct (holder = a client between a successful Acquire and
// the matching Release). Capacity sizes the arena for that many
// concurrent holders; beyond it the arena serves best-effort, and
// Acquire reports ErrArenaFull once repeated full passes found no free
// slot (expected under over-subscription, and possible — though
// vanishingly unlikely — when sustained churn races every pass). Only
// the holder of a name may Release it, and a name must not be used after
// its release. Three backends exist: ArenaLevel (LevelArray-style levels
// of packed TAS bitmaps whose issued names track the instantaneous
// occupancy), ArenaTau (the §III τ-register algorithm adapted with
// releasable counting-device bits), and ArenaBackendSharded (below).
// Releases are shm.OpClear operations in the kernel, so the adversarial
// simulator covers churn schedules; the E15 harness experiment and
// BENCH_2.json record the workload.
//
// # Sharded arenas for multicore traffic
//
// The level and τ backends funnel every operation through one shared
// structure, so concurrent goroutine traffic serializes on its bitmap
// words. The sharded backend stripes the arena across
// ArenaConfig.Shards independent sub-arenas owning disjoint name ranges:
//
//	arena, err := shmrename.NewArena(shmrename.ArenaConfig{
//		Capacity: 1024,
//		Backend:  shmrename.ArenaBackendSharded,
//		Shards:   8, // 0 = GOMAXPROCS
//	})
//
// Acquire tries the caller's cached home shard first (one bounded pass),
// then steals from ArenaConfig.StealProbes randomly chosen other shards,
// and finally sweeps all shards deterministically — so the termination
// and safety contracts match the single-backend arena exactly, while
// disjoint shards keep concurrent claimers on disjoint cache lines and
// cut the per-acquire scan from O(Capacity) to O(Capacity/Shards) under
// tight provisioning. Per-shard occupancy hints steer acquires away from
// shards recently observed full at no step cost. The price is name
// tightness: issued names lie within the shards × per-shard-bound
// envelope reported by Arena.NameBound (ALGORITHMS.md §8 discusses the
// trade-off). Experiment E16 and BENCH_3.json measure the native
// scalability; see PERF.md for regeneration instructions.
//
// # The word-granular claim engine and batch operations
//
// Every arena searches its packed TAS bitmaps in one of two probe modes
// (ArenaConfig.Probe). ProbeBit is the paper's cost model: one
// shared-memory access examines one name. ProbeWord — the default — is
// the word-granular claim engine (ALGORITHMS.md §10): one access
// snapshots a 64-name bitmap word and claims a free bit via CAS, fallback
// scans walk words instead of names, and saturation hints steer probes
// away from words observed full. At full occupancy this cuts the
// structural steps/acquire cost by 3–35× (BENCH_4.json; PERF.md has the
// matrix) while preserving all safety and termination contracts.
//
// Churn-heavy services amortize further with the batch API:
//
//	names, err := arena.AcquireN(64)  // up to 64 names per memory access
//	// ...
//	err = arena.ReleaseAll(names)     // word-adjacent names coalesce
//
// AcquireN is all-or-nothing (a partial batch is rolled back and
// ErrArenaFull reported); ReleaseAll releases every valid held name and
// joins the errors for the rest. Arena.Stats exposes the cumulative
// steps-per-acquire the perf gates track.
//
// # Word-block lease caches and tail latency
//
// The claim engine makes one shared-memory step buy 64 names; for
// latency-sensitive services ArenaConfig.LeaseBlocks goes one further
// and makes most acquires buy zero. Each worker slot leases whole
// 64-name blocks from the shared bitmap (one ClaimMask per block) and
// serves Acquire and Release from a thread-local free list, so the fast
// path touches no shared memory at all:
//
//	arena, err := shmrename.NewArena(shmrename.ArenaConfig{
//		Capacity:    4096, // provision well above peak holders
//		Backend:     shmrename.ArenaBackendSharded,
//		LeaseBlocks: 64,   // names leased per block (rounded to 64)
//	})
//
// The cache spills whole blocks back under Release-side pressure and
// steals from sibling slots before falling through to the shared path,
// so conservation holds exactly: every name is free, parked in exactly
// one cache, or granted to exactly one holder. The cost is name
// tightness — the NameBound envelope widens by the cached-block
// headroom — which is why the cache suits provisioned arenas (capacity
// comfortably above peak holders) rather than tight ones. It composes
// with crash recovery: a cached block is one lease, Heartbeat renews
// parked names along with granted ones, and the recovery sweep reclaims
// abandoned blocks whole. OpenArena rejects LeaseBlocks, since a
// per-worker cache cannot span OS processes. BENCH_5.json records the
// measured effect — closed-loop acquire p99 at 64 goroutines drops from
// ~200µs (tight, uncached) to 127ns (provisioned, cached) — and the
// open-loop methodology behind it (experiment E19: Poisson and bursty
// scheduled arrivals, coordinated-omission-free latency, saturation
// knees) is documented in PERF.md and ALGORITHMS.md §12.
//
// # Execution modes and cost model
//
// Both modes share all algorithm and substrate code; only the per-step
// transport differs (PERF.md has the measured numbers):
//
//   - Simulated mode: each process is a pull-style coroutine; a granted
//     step is two coroutine stack switches with no channel operations and
//     no per-step allocation. Executions are deterministic given (seed,
//     schedule). Operation descriptors address shared structures by
//     interned integer SpaceIDs, never strings.
//   - Native mode: processes are goroutines hitting sync/atomic directly;
//     a step is one atomic operation on the target structure.
//
// Name spaces are word-packed test-and-set bitmaps (64 names per word, one
// bit per name, CAS-on-word claims). Native-mode instances can opt into a
// cache-line-padded layout (one word per 64-byte line) to avoid false
// sharing between concurrent claimers.
package shmrename
