package shmrename

import (
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"time"
)

// Backoff bounds for AcquireCtx: exponential from acquireBackoffBase to
// acquireBackoffCap, with ±50% jitter so a herd of blocked acquirers does
// not retry in lockstep against the same full scans.
const (
	acquireBackoffBase = 50 * time.Microsecond
	acquireBackoffCap  = 10 * time.Millisecond
)

// AcquireCtx claims a name like Acquire, but treats ErrArenaFull as
// backpressure instead of an error: it retries with bounded exponential
// backoff (jittered, capped at a few milliseconds per wait) until a slot
// frees up or the context ends. This is the right call under transient
// over-subscription — capacity pressure, quarantine-reduced capacity on a
// Degraded arena, churn racing the scans — where the caller can afford to
// wait for a release.
//
// Errors other than arena-full (ErrClosed, the sticky ErrCorrupted) are
// returned immediately: waiting cannot fix them. When the context ends
// first, the returned error wraps both the context's error and
// ErrArenaFull, so errors.Is works against either cause. As with Acquire,
// the returned name is -1 on any error.
func (a *Arena) AcquireCtx(ctx context.Context) (int, error) {
	if err := ctx.Err(); err != nil {
		return -1, fmt.Errorf("shmrename: AcquireCtx: %w", err)
	}
	backoff := acquireBackoffBase
	for {
		name, err := a.Acquire()
		if err == nil || !errors.Is(err, ErrArenaFull) {
			return name, err
		}
		// Full: wait out roughly one backoff step, jittered to ±50%.
		d := backoff/2 + rand.N(backoff)
		t := time.NewTimer(d)
		select {
		case <-ctx.Done():
			t.Stop()
			return -1, fmt.Errorf("shmrename: AcquireCtx: %w while %w", ctx.Err(), ErrArenaFull)
		case <-t.C:
		}
		if backoff *= 2; backoff > acquireBackoffCap {
			backoff = acquireBackoffCap
		}
	}
}
