package shmrename

import (
	"errors"
	"sync/atomic"

	"shmrename/internal/prng"
	"shmrename/internal/shm"
	"shmrename/internal/taureg"
)

// CountingDevice is the standalone §II.C hardware primitive: a block of
// test-and-set bits whose integrated counter admits at most τ winners,
// exposed for uses beyond renaming — the paper closes by noting "this
// device may have the potential to speed up other distributed algorithms
// as well" (e.g. electing a bounded committee among racing goroutines).
//
// The device is safe for concurrent use; it is self-clocked, so every
// acquisition resolves without external coordination.
type CountingDevice struct {
	dev *taureg.Device
	seq atomic.Int64
}

// NewCountingDevice builds a device with the given number of TAS bits
// (1..64) and threshold 0 <= tau <= width.
func NewCountingDevice(width, tau int) (*CountingDevice, error) {
	if width < 1 || width > taureg.MaxWidth {
		return nil, errors.New("shmrename: counting device width must be in [1, 64]")
	}
	if tau < 0 || tau > width {
		return nil, errors.New("shmrename: counting device tau must be in [0, width]")
	}
	return &CountingDevice{dev: taureg.NewDevice("countdev", width, tau, true)}, nil
}

// Width returns the number of TAS bits.
func (c *CountingDevice) Width() int { return c.dev.Width() }

// Tau returns the admission threshold.
func (c *CountingDevice) Tau() int { return c.dev.Tau() }

// Confirmed returns the number of confirmed winners so far (never above
// Tau).
func (c *CountingDevice) Confirmed() int { return c.dev.ConfirmedCount() }

// Acquire tries to win one of the device's bits: it probes up to attempts
// uniformly random bits (seeded deterministically per call order) and
// returns the confirmed bit index, or -1 if every probe lost. Once τ
// winners are confirmed, all further acquisitions lose.
func (c *CountingDevice) Acquire(seed uint64, attempts int) int {
	id := int(c.seq.Add(1))
	p := shm.NewProc(id, prng.NewStream(seed, id), nil, 1<<20)
	r := p.Rand()
	for k := 0; k < attempts; k++ {
		b := r.Intn(c.dev.Width())
		if c.dev.AcquireBit(p, b) == taureg.Won {
			return b
		}
	}
	return -1
}
